"""Sliding-window distinct counting.

The paper's application list (Sec. 1) includes sliding-HyperLogLog-based
port-scan detection; this module provides the standard bucketed-window
construction on ExaLogLog: time is divided into fixed-width buckets, each
bucket owns a small sketch, and a query merges the sketches of the buckets
overlapping the window. Expired buckets are dropped, so memory is bounded
by ``buckets_in_window + 1`` sketches.

The window is *bucket-aligned*: a query covers between ``window`` and
``window + bucket_width`` of history (the usual trade-off of the bucketed
approach; exact sliding windows need timestamped registers and lose
ExaLogLog's fixed-size state).

Live buckets are RAM-only and vanish when the bucket ages out — unless a
:class:`repro.store.SketchStore` is attached (``store=``), in which case
every evicted bucket's sketch retires durably into the store under
``<store_prefix><bucket index>`` before being dropped, so the full
history remains queryable (and crash-recoverable) after the window moved
on.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Any

from repro.core.exaloglog import ExaLogLog
from repro.hashing import hash64

if TYPE_CHECKING:
    from repro.store import SketchStore


class SlidingWindowDistinctCounter:
    """Approximate distinct count over the trailing ``window`` time units.

    >>> counter = SlidingWindowDistinctCounter(window=60.0, buckets=6, p=8)
    >>> counter.add("alice", at=0.0)
    >>> counter.add("bob", at=30.0)
    >>> round(counter.estimate(now=30.0))
    2
    """

    __slots__ = (
        "_bucket_width",
        "_buckets",
        "_d",
        "_p",
        "_seed",
        "_sketches",
        "_store",
        "_store_prefix",
        "_t",
    )

    def __init__(
        self,
        window: float,
        buckets: int = 8,
        t: int = 2,
        d: int = 20,
        p: int = 8,
        seed: int = 0,
        store: "SketchStore | None" = None,
        store_prefix: str = "bucket:",
    ) -> None:
        if window <= 0.0:
            raise ValueError("window must be positive")
        if buckets < 1:
            raise ValueError("need at least one bucket")
        self._bucket_width = window / buckets
        self._buckets = buckets
        self._t = t
        self._d = d
        self._p = p
        self._seed = seed
        if store is not None:
            store_t, store_d, store_p, _, store_seed = store.aggregator._config
            if (store_t, store_d, store_p) != (t, d, p):
                raise ValueError(
                    f"store sketches are (t, d, p)=({store_t}, {store_d}, "
                    f"{store_p}); the window uses ({t}, {d}, {p}) — retired "
                    "buckets could not merge"
                )
            if store_seed != seed:
                raise ValueError(
                    f"store hashes with seed {store_seed}, the window with "
                    f"seed {seed} — merging their sketches would double-count "
                    "identical items"
                )
        self._store = store
        self._store_prefix = store_prefix
        #: bucket index -> sketch, oldest first.
        self._sketches: OrderedDict[int, ExaLogLog] = OrderedDict()

    @property
    def window(self) -> float:
        """The configured window length."""
        return self._bucket_width * self._buckets

    @property
    def config(self) -> tuple[int, int, int, bool, int]:
        """``(t, d, p, sparse, seed)`` of the bucket sketches.

        Buckets are always dense :class:`~repro.core.exaloglog.ExaLogLog`
        instances, so the sparse flag is ``False``; the tuple matches the
        attached store's configuration when one is present (checked in
        ``__init__`` up to the sparse flag, which stores may set freely —
        dense and sparse sketches of one parameterisation merge exactly).
        """
        return (self._t, self._d, self._p, False, self._seed)

    @property
    def bucket_width(self) -> float:
        return self._bucket_width

    @property
    def active_buckets(self) -> int:
        """Number of bucket sketches currently held."""
        return len(self._sketches)

    @property
    def memory_bytes(self) -> int:
        """Modelled footprint of all bucket sketches."""
        return sum(sketch.memory_bytes for sketch in self._sketches.values())

    def _bucket_of(self, at: float) -> int:
        return int(at // self._bucket_width)

    def _evict_before(self, bucket: int) -> None:
        cutoff = bucket - self._buckets
        while self._sketches:
            oldest = next(iter(self._sketches))
            if oldest > cutoff:
                break
            self._retire(oldest, self._sketches[oldest])
            del self._sketches[oldest]

    def _retire(self, bucket: int, sketch: ExaLogLog) -> None:
        """Persist an evicted bucket into the attached store (if any)."""
        if self._store is not None and not sketch.is_empty:
            self._store.merge_sketch(f"{self._store_prefix}{bucket}", sketch)

    def flush_to_store(self) -> int:
        """Retire all *live* buckets into the store without evicting them.

        Durable shutdown/checkpoint hook: after this, the store holds
        every bucket ever fed to the counter (evicted ones retired on
        eviction, live ones now). Safe to call repeatedly — sketch merges
        are idempotent, so re-flushing a bucket is a no-op for its
        estimate. Returns the number of buckets written.
        """
        if self._store is None:
            raise ValueError("no store attached to this counter")
        flushed = 0
        for bucket, sketch in self._sketches.items():
            if not sketch.is_empty:
                self._store.merge_sketch(f"{self._store_prefix}{bucket}", sketch)
                flushed += 1
        return flushed

    # -- updates -----------------------------------------------------------------

    def add(self, item: Any, at: float) -> None:
        """Record ``item`` observed at time ``at`` (monotone or not)."""
        self.add_hash(hash64(item, self._seed), at)

    def add_hash(self, hash_value: int, at: float) -> None:
        bucket = self._bucket_of(at)
        sketch = self._sketch_for(bucket)
        if sketch is not None:
            sketch.add_hash(hash_value)

    def _sketch_for(self, bucket: int) -> ExaLogLog | None:
        """The bucket's sketch, creating (and evicting) as needed.

        Returns ``None`` for a bucket that is already expired — older
        than the whole window relative to the newest bucket seen. (A
        created-then-evicted sketch would silently swallow the caller's
        writes; the explicit skip also saves the wasted allocation.)
        """
        sketch = self._sketches.get(bucket)
        if sketch is not None:
            return sketch
        newest = next(reversed(self._sketches)) if self._sketches else None
        if newest is not None and bucket <= newest - self._buckets:
            return None
        sketch = ExaLogLog(self._t, self._d, self._p)
        self._sketches[bucket] = sketch
        if newest is not None and bucket < newest:
            # Out-of-order (but in-window) creation: rotate the larger
            # keys behind the new one — O(buckets) on this rare path
            # instead of re-sorting the whole dict on every creation.
            for key in [k for k in self._sketches if k > bucket]:
                self._sketches.move_to_end(key)
        else:
            # New newest bucket: insertion order is already sorted; old
            # buckets may now have fallen out of the window.
            self._evict_before(bucket)
        return sketch

    def add_batch(self, items: Any, at, workers: int | None = None) -> None:
        """Record a batch of items; ``at`` is one time or one per item."""
        from repro.hashing.batch import hash_items

        self.add_hashes(hash_items(items, self._seed), at, workers)

    def add_hashes(self, hashes, at, workers: int | None = None) -> None:
        """Bulk insert hashes observed at time(s) ``at``.

        ``at`` may be a scalar (whole batch in one bucket) or an array of
        per-item timestamps. Buckets are processed in first-appearance
        order, so creations — and therefore evictions and expired-bucket
        skips, which only happen at first appearance — occur exactly as
        in the sequential loop; the final state is identical.

        ``workers`` forwards to each bucket sketch's parallel
        :meth:`~repro.core.exaloglog.ExaLogLog.add_hashes` fan-out
        (worthwhile when single buckets receive very large segments).
        """
        import numpy as np

        from repro.backends import as_hash_array

        hashes = as_hash_array(hashes)
        if hashes.size == 0:
            return
        at_array = np.asarray(at, dtype=np.float64)
        if at_array.ndim == 0:
            sketch = self._sketch_for(self._bucket_of(float(at_array)))
            if sketch is not None:
                sketch.add_hashes(hashes, workers)
            return
        at_array = at_array.reshape(-1)
        if len(at_array) != len(hashes):
            raise ValueError(
                f"timestamp/hash length mismatch: {len(at_array)} vs {len(hashes)}"
            )
        buckets = np.floor_divide(at_array, self._bucket_width).astype(np.int64)
        unique_buckets, first_positions = np.unique(buckets, return_index=True)
        appearance = np.argsort(first_positions, kind="stable")
        # One stable sort + segment slicing (as in the aggregator scatter)
        # instead of a full-array mask per bucket.
        order = np.argsort(buckets, kind="stable")
        sorted_buckets = buckets[order]
        starts = np.searchsorted(sorted_buckets, unique_buckets, side="left")
        ends = np.searchsorted(sorted_buckets, unique_buckets, side="right")
        for position in appearance.tolist():
            bucket = int(unique_buckets[position])
            sketch = self._sketch_for(bucket)
            if sketch is None:
                continue
            segment = order[starts[position] : ends[position]]
            sketch.add_hashes(hashes[segment], workers)

    # -- queries --------------------------------------------------------------------

    def estimate(self, now: float) -> float:
        """Distinct count of the buckets overlapping ``(now - window, now]``."""
        current = self._bucket_of(now)
        lowest = current - self._buckets + 1
        merged: ExaLogLog | None = None
        for bucket, sketch in self._sketches.items():
            if lowest <= bucket <= current:
                if merged is None:
                    merged = sketch.copy()
                else:
                    merged.merge_inplace(sketch)
        return merged.estimate() if merged is not None else 0.0

    def estimate_per_bucket(self, now: float) -> list[tuple[int, float]]:
        """(bucket index, estimate) for each live bucket in the window.

        All bucket sketches resolve in one simultaneous Newton solve
        (:func:`repro.estimation.batch.batch_estimate_sketches`),
        bit-identical to estimating each bucket on its own.
        """
        from repro.estimation.batch import batch_estimate_sketches

        current = self._bucket_of(now)
        lowest = current - self._buckets + 1
        live = [
            (bucket, sketch)
            for bucket, sketch in self._sketches.items()
            if lowest <= bucket <= current
        ]
        values = batch_estimate_sketches([sketch for _, sketch in live])
        return [(bucket, value) for (bucket, _), value in zip(live, values)]

    def __repr__(self) -> str:
        return (
            f"SlidingWindowDistinctCounter(window={self.window}, "
            f"buckets={self._buckets}, active={self.active_buckets})"
        )
