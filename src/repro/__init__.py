"""repro — a Python reproduction of ExaLogLog (Ertl, EDBT 2025).

Space-efficient, practical approximate distinct counting up to the
exa-scale: the ExaLogLog sketch, its ML / martingale estimators, sparse
mode, every baseline the paper compares against, and the full simulation
and benchmark harness behind the paper's tables and figures.

Quickstart::

    from repro import ExaLogLog

    sketch = ExaLogLog(t=2, d=20, p=8)
    for item in ("alice", "bob", "alice"):
        sketch.add(item)
    print(round(sketch.estimate()))   # ~2

See README.md for the architecture overview and DESIGN.md for the
paper-to-module map.
"""

from repro.backends import BulkBackend
from repro.core.exaloglog import ExaLogLog
from repro.core.martingale import MartingaleExaLogLog
from repro.core.params import (
    ExaLogLogParams,
    ell_1_9,
    ell_2_16,
    ell_2_20,
    ell_2_24,
    make_params,
)
from repro.core.sparse import SparseExaLogLog
from repro.core.token import estimate_from_tokens, hash_to_token, token_to_hash
from repro.aggregate import DistinctCountAggregator
from repro.hashing import hash64
from repro.parallel import ParallelBulkIngestor
from repro.setops import (
    containment_estimate,
    difference_estimate,
    intersection_estimate,
    jaccard_estimate,
    union_estimate,
)
from repro.query import query
from repro.store import MemmapRegisters, SketchStore, SpilledGroupBy
from repro.windowed import SlidingWindowDistinctCounter

__version__ = "1.0.0"

__all__ = [
    "BulkBackend",
    "DistinctCountAggregator",
    "ExaLogLog",
    "ExaLogLogParams",
    "MartingaleExaLogLog",
    "MemmapRegisters",
    "ParallelBulkIngestor",
    "SketchStore",
    "SlidingWindowDistinctCounter",
    "SparseExaLogLog",
    "SpilledGroupBy",
    "__version__",
    "containment_estimate",
    "difference_estimate",
    "ell_1_9",
    "ell_2_16",
    "ell_2_20",
    "ell_2_24",
    "estimate_from_tokens",
    "hash64",
    "hash_to_token",
    "intersection_estimate",
    "jaccard_estimate",
    "make_params",
    "query",
    "token_to_hash",
    "union_estimate",
]
