"""Cluster metadata, the rebalance journal, and cutover fence encoding.

A cluster root directory holds N independent shard store directories
plus two small control files, both written atomically (temp + rename):

``cluster.json``
    The authoritative topology: shard count, rebalance epoch, and the
    sketch configuration every shard must share. Flipping this file is
    the *commit point* of a rebalance — a crash on either side of the
    flip recovers to a consistent topology.
``rebalance.json``
    Present only while a rebalance is in flight (written first, removed
    last). Finding one at open time means the previous process died
    mid-rebalance; :class:`repro.cluster.ShardedStore` replays the
    rebalance forward — every step is idempotent (sketch merges are
    register-max, drops are pops) — until the journal can be cleared.

The cutover *fence* is the WAL-level view of the same transition: a
``RECORD_CUTOVER`` record written into each shard's log carrying
``(epoch, from_shards, to_shards, phase)``, so replicas and readers
replaying a shard WAL see exactly where ownership changed, at a precise
LSN, without consulting any cluster-level file.
"""

from __future__ import annotations

import json
import os
import pathlib
from dataclasses import dataclass

from repro.storage.serialization import (
    SerializationError,
    read_uvarint,
    write_uvarint,
)

META_NAME = "cluster.json"
JOURNAL_NAME = "rebalance.json"

#: Cutover fence phases.
CUTOVER_BEGIN = 0
CUTOVER_COMMIT = 1

#: Bump when the meta layout changes incompatibly.
META_VERSION = 1


def shard_dir_name(index: int) -> str:
    return f"shard-{index:04d}"


def replica_dir_name(index: int) -> str:
    return f"replica-{index:04d}"


def shard_path(root, index: int) -> pathlib.Path:
    return pathlib.Path(root) / shard_dir_name(index)


def replica_path(root, index: int) -> pathlib.Path:
    return pathlib.Path(root) / replica_dir_name(index)


@dataclass(frozen=True)
class ClusterMeta:
    """The persisted topology of one sharded cluster."""

    shards: int
    """Number of hash partitions (= shard store directories)."""

    epoch: int
    """Rebalance epoch; increments exactly once per committed rebalance."""

    config: tuple
    """The ``(t, d, p, sparse, seed)`` tuple every shard shares."""


def _write_atomic(path: pathlib.Path, payload: dict) -> None:
    temporary = path.with_suffix(".tmp")
    with open(temporary, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temporary, path)
    if os.name == "posix":
        fd = os.open(path.parent, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)


def write_meta(root, meta: ClusterMeta) -> None:
    t, d, p, sparse, seed = meta.config
    _write_atomic(
        pathlib.Path(root) / META_NAME,
        {
            "version": META_VERSION,
            "shards": meta.shards,
            "epoch": meta.epoch,
            "config": {"t": t, "d": d, "p": p, "sparse": bool(sparse), "seed": seed},
        },
    )


def read_meta(root) -> "ClusterMeta | None":
    """The cluster's topology, or ``None`` for an uninitialised root."""
    path = pathlib.Path(root) / META_NAME
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        return None
    except (OSError, ValueError) as error:
        raise SerializationError(f"{path}: unreadable cluster metadata: {error}")
    if payload.get("version") != META_VERSION:
        raise SerializationError(
            f"{path}: cluster metadata version {payload.get('version')!r}, "
            f"expected {META_VERSION}"
        )
    try:
        config = payload["config"]
        meta = ClusterMeta(
            shards=int(payload["shards"]),
            epoch=int(payload["epoch"]),
            config=(
                int(config["t"]),
                int(config["d"]),
                int(config["p"]),
                bool(config["sparse"]),
                int(config["seed"]),
            ),
        )
    except (KeyError, TypeError, ValueError) as error:
        raise SerializationError(f"{path}: malformed cluster metadata: {error}")
    if meta.shards < 1:
        raise SerializationError(f"{path}: shard count {meta.shards} < 1")
    return meta


def write_journal(root, epoch: int, from_shards: int, to_shards: int) -> None:
    """Durably record that a rebalance is in flight (written before any step)."""
    _write_atomic(
        pathlib.Path(root) / JOURNAL_NAME,
        {"epoch": epoch, "from_shards": from_shards, "to_shards": to_shards},
    )


def read_journal(root) -> "tuple[int, int, int] | None":
    """An in-flight rebalance as ``(epoch, from, to)``, ``None`` when clean."""
    path = pathlib.Path(root) / JOURNAL_NAME
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        return None
    except (OSError, ValueError) as error:
        raise SerializationError(f"{path}: unreadable rebalance journal: {error}")
    try:
        return (
            int(payload["epoch"]),
            int(payload["from_shards"]),
            int(payload["to_shards"]),
        )
    except (KeyError, TypeError, ValueError) as error:
        raise SerializationError(f"{path}: malformed rebalance journal: {error}")


def clear_journal(root) -> None:
    try:
        (pathlib.Path(root) / JOURNAL_NAME).unlink()
    except FileNotFoundError:
        pass


# -- cutover fence records -----------------------------------------------------


def encode_cutover(
    epoch: int, from_shards: int, to_shards: int, phase: int
) -> bytes:
    """The ``RECORD_CUTOVER`` payload: four uvarints."""
    if phase not in (CUTOVER_BEGIN, CUTOVER_COMMIT):
        raise ValueError(f"unknown cutover phase {phase}")
    buffer = bytearray()
    write_uvarint(buffer, epoch)
    write_uvarint(buffer, from_shards)
    write_uvarint(buffer, to_shards)
    write_uvarint(buffer, phase)
    return bytes(buffer)


def decode_cutover(payload: bytes) -> tuple[int, int, int, int]:
    """Decode a fence payload back to ``(epoch, from, to, phase)``."""
    offset = 0
    epoch, offset = read_uvarint(payload, offset)
    from_shards, offset = read_uvarint(payload, offset)
    to_shards, offset = read_uvarint(payload, offset)
    phase, offset = read_uvarint(payload, offset)
    if offset != len(payload):
        raise SerializationError(
            f"{len(payload) - offset} trailing bytes after cutover payload"
        )
    if phase not in (CUTOVER_BEGIN, CUTOVER_COMMIT):
        raise SerializationError(f"unknown cutover phase {phase}")
    return epoch, from_shards, to_shards, phase
