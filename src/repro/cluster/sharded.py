"""``ShardedStore``: a multi-writer, hash-partitioned cluster of stores.

The paper's Algorithm 5 merge is *exact*, which is the whole reason a
hash-partitioned cluster can be bit-identical to a single store: route
every ``(group, batch)`` to ``shard_of(key, N)`` and each group's sketch
receives exactly the hash stream a single store would have fed it — on
one shard, behind that shard's own WAL, snapshot cadence, and optional
replica chain. Nothing about the sketches changes; only who holds them.

Layout of a cluster root::

    cluster/
      cluster.json        topology: shard count, epoch, configuration
      rebalance.json      present only while a rebalance is in flight
      shard-0000/         a full SketchStore directory (WAL + snapshots)
      shard-0001/
      ...
      replica-0000/       optional per-shard follower directories
      ...

**Rebalancing** exploits mergeability instead of re-ingesting: to go
from N to M shards, every group whose owner changes under ``shard_of(key,
M)`` is shipped as one serialized sketch (a ``RECORD_SKETCH`` WAL record
on the destination), then dropped from its source (``RECORD_DROP``).
The transition is *fenced*: a ``RECORD_CUTOVER`` begin record lands in
every pre-rebalance WAL before a byte moves and a commit record in every
post-rebalance WAL after the drops, so any log replayer (recovery, a
reader tail, a follower chain) can name the exact LSN interval in which
ownership moved. Atomically rewriting ``cluster.json`` is the commit
point; the ``rebalance.json`` journal (written first, cleared last)
makes a crash at *any* intermediate point recoverable — every step is
idempotent (sketch merges are register-max, drops are pops), so
:meth:`ShardedStore.open` simply replays the rebalance forward.
"""

from __future__ import annotations

import pathlib
import shutil
from dataclasses import dataclass
from typing import Any, Hashable, Iterable, Iterator

from repro.aggregate import DistinctCountAggregator
from repro.cluster.meta import (
    CUTOVER_BEGIN,
    CUTOVER_COMMIT,
    ClusterMeta,
    clear_journal,
    encode_cutover,
    read_journal,
    read_meta,
    replica_path,
    shard_path,
    write_journal,
    write_meta,
)
from repro.cluster.source import ClusterSource
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.parallel.shard import shard_of
from repro.store.sketchstore import SketchStore, sketch_to_blob

_REBALANCES = _metrics.counter(
    "cluster.rebalances", "Committed shard-count changes."
)
_REBALANCE_MOVED = _metrics.counter(
    "cluster.rebalance_moved_groups",
    "Groups shipped between shards by rebalances.",
)
_REBALANCE_BYTES = _metrics.counter(
    "cluster.rebalance_bytes",
    "Serialized sketch bytes shipped between shards by rebalances.",
)
_SKEW = _metrics.gauge(
    "cluster.skew",
    "Largest shard's group count over the per-shard mean (1.0 = balanced).",
)


class SimulatedCrash(RuntimeError):
    """Raised by the fault-injection hook ``ShardedStore._crash_after``."""


@dataclass(frozen=True)
class RebalanceResult:
    """What one committed rebalance did."""

    from_shards: int
    to_shards: int
    epoch: int
    moved_groups: int
    """Groups whose owner changed (each shipped as one sketch)."""
    shipped_bytes: int
    """Serialized sketch bytes that crossed shard boundaries."""
    resumed: bool = False
    """True when crash recovery completed an interrupted rebalance."""


@dataclass(frozen=True)
class ShardStatus:
    """One shard's health snapshot (see :meth:`ShardedStore.status`)."""

    index: int
    directory: str
    groups: int
    generation: int
    wal_records: int
    wal_bytes: int
    durable_lsn: int


class ShardedStore:
    """N independent :class:`~repro.store.SketchStore` shards, one surface.

    >>> cluster = ShardedStore.open(tmp_path / "c", shards=4, p=8)
    >>> cluster.append("DE", ["alice", "bob"]).append("FR", ["carol"])
    >>> round(cluster.estimate("DE"))
    2
    >>> cluster.rebalance(6).to_shards
    6

    Implements the :class:`~repro.query.source.SketchSource` protocol, so
    the query planner/executor (and the CLI dialect) treat a cluster as
    just another source. Writes route by ``shard_of(key, N)``; reads
    scatter-gather through a :class:`~repro.cluster.ClusterSource`.

    ``shards`` is required when creating a new cluster and validated
    (like the sketch parameters) against ``cluster.json`` on an existing
    one. Opening a cluster whose previous process died mid-rebalance
    completes the rebalance before returning.
    """

    #: Test hook: name of the rebalance stage after which to raise
    #: :class:`SimulatedCrash` (fault-injection suites set this).
    _crash_after: "str | None" = None

    def __init__(self, *args, **kwargs) -> None:
        raise TypeError("use ShardedStore.open(root, shards=N, ...)")

    @classmethod
    def open(
        cls,
        root,
        shards: "int | None" = None,
        t: "int | None" = None,
        d: "int | None" = None,
        p: "int | None" = None,
        sparse: "bool | None" = None,
        seed: "int | None" = None,
        fsync: bool = False,
        auto_compact_bytes: "int | None" = None,
    ) -> "ShardedStore":
        """Open (or initialise) a cluster root directory.

        Creating needs ``shards``; the sketch parameters default like
        :meth:`SketchStore.open`. On an existing cluster the persisted
        topology and configuration win, and explicitly passed values are
        validated against them.
        """
        store = object.__new__(cls)
        store._root = pathlib.Path(root)
        store._fsync = fsync
        store._auto_compact_bytes = auto_compact_bytes
        store._shards: "list[SketchStore]" = []
        meta = read_meta(store._root)
        if meta is None:
            if shards is None:
                raise ValueError(
                    f"{store._root}: uninitialised cluster — pass shards=N "
                    "to create one"
                )
            if shards < 1:
                raise ValueError(f"shards must be >= 1, got {shards}")
            store._root.mkdir(parents=True, exist_ok=True)
            for index in range(shards):
                store._shards.append(
                    store._open_shard(index, t=t, d=d, p=p, sparse=sparse, seed=seed)
                )
            meta = ClusterMeta(
                shards=shards, epoch=0, config=store._shards[0].config
            )
            write_meta(store._root, meta)
            store._meta = meta
        else:
            if shards is not None and shards != meta.shards:
                raise ValueError(
                    f"cluster at {store._root} has {meta.shards} shards, "
                    f"requested {shards} (use rebalance() to change the "
                    "fan-out)"
                )
            mt, md, mp, msparse, mseed = meta.config
            requested = (t, d, p, sparse, seed)
            mismatched = [
                (value, on_disk)
                for value, on_disk in zip(requested, meta.config)
                if value is not None and value != on_disk
            ]
            if mismatched:
                raise ValueError(
                    f"cluster at {store._root} has configuration "
                    f"(t, d, p, sparse, seed)={meta.config}, requested {requested}"
                )
            store._meta = meta
            for index in range(meta.shards):
                store._shards.append(
                    store._open_shard(
                        index, t=mt, d=md, p=mp, sparse=msparse, seed=mseed
                    )
                )
            journal = read_journal(store._root)
            if journal is not None:
                store._recover_rebalance(journal)
        store._counters = [
            _metrics.counter(
                "cluster.append_records",
                "WAL records routed to each shard.",
                labels={"shard": str(index)},
            )
            for index in range(len(store._shards))
        ]
        return store

    def _open_shard(self, index: int, **config) -> SketchStore:
        return SketchStore.open(
            shard_path(self._root, index),
            fsync=self._fsync,
            auto_compact_bytes=self._auto_compact_bytes,
            **config,
        )

    # -- topology --------------------------------------------------------------

    @property
    def root(self) -> pathlib.Path:
        return self._root

    @property
    def shards(self) -> int:
        return len(self._shards)

    @property
    def epoch(self) -> int:
        """Rebalance epoch (0 until the first committed rebalance)."""
        return self._meta.epoch

    @property
    def shard_stores(self) -> tuple:
        """The per-shard :class:`~repro.store.SketchStore` writers."""
        return tuple(self._shards)

    @property
    def shard_sources(self) -> tuple:
        """Protocol alias the query executor uses to see through a cluster."""
        return tuple(self._shards)

    @property
    def config(self) -> tuple:
        """The ``(t, d, p, sparse, seed)`` tuple every shard shares."""
        return self._meta.config

    def shard_of(self, group: Hashable) -> int:
        """The shard index owning ``group`` under the current fan-out."""
        key = DistinctCountAggregator._group_key(group)
        return shard_of(key, len(self._shards))

    def shard_for(self, group: Hashable) -> SketchStore:
        """The shard store owning ``group``."""
        return self._shards[self.shard_of(group)]

    # -- ingest (routed) -------------------------------------------------------

    def append(self, group: Hashable, items: Any) -> "ShardedStore":
        """Durably record a batch of items under ``group``; returns ``self``."""
        from repro.hashing.batch import hash_items

        return self.append_hashes(group, hash_items(items, self._meta.config[4]))

    def append_hashes(self, group: Hashable, hashes) -> "ShardedStore":
        """Durably record pre-hashed values under ``group``; returns ``self``."""
        key = DistinctCountAggregator._group_key(group)
        index = shard_of(key, len(self._shards))
        self._shards[index].append_hashes(key, hashes)
        if _metrics.enabled():
            self._counters[index].inc()
        return self

    def add_batch(
        self, groups: "Iterable[Hashable]", items: Any
    ) -> "ShardedStore":
        """Scatter one ``(groups, items)`` batch across the shards.

        One vectorised hash + scatter pass (the aggregator's shared front
        end), then each per-group segment routes to its owning shard as a
        single WAL record.
        """
        scratch = DistinctCountAggregator(*self._meta.config)
        for key, hashes in scratch._segments(groups, items):
            self.append_hashes(key, hashes)
        return self

    def merge_sketch(self, group: Hashable, sketch) -> "ShardedStore":
        """Durably merge a whole sketch into ``group`` on its owner shard."""
        key = DistinctCountAggregator._group_key(group)
        index = shard_of(key, len(self._shards))
        self._shards[index].merge_sketch(key, sketch)
        if _metrics.enabled():
            self._counters[index].inc()
        return self

    # -- queries (scatter-gather through ClusterSource) ------------------------

    @property
    def source(self) -> ClusterSource:
        """A scatter-gather :class:`ClusterSource` over the live shards."""
        return ClusterSource(self._shards)

    def groups(self) -> Iterator[bytes]:
        for shard in self._shards:
            yield from shard.groups()

    def group_sketch(self, group: Hashable):
        return self.shard_for(group).group_sketch(group)

    def estimate(self, group: Hashable) -> float:
        return self.shard_for(group).estimate(group)

    def estimates(self) -> "dict[bytes, float]":
        return self.source.estimates()

    def top(self, count: int) -> "list[tuple[bytes, float]]":
        return self.source.top(count)

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    def __contains__(self, group: Hashable) -> bool:
        return group in self.shard_for(group)

    def to_aggregator(self) -> DistinctCountAggregator:
        """The whole cluster's state as one in-memory aggregator.

        The bit-identity surface: shards own disjoint groups, so placing
        private copies side by side reconstructs exactly the aggregator a
        single store would hold after the same ingest.
        """
        merged = DistinctCountAggregator(*self._meta.config)
        for shard in self._shards:
            for key, sketch in shard.aggregator._groups.items():
                merged._groups[key] = sketch.copy()
        return merged

    # -- maintenance -----------------------------------------------------------

    def compact(self) -> "list[int]":
        """Compact every shard; returns the new per-shard generations."""
        return [shard.compact() for shard in self._shards]

    def status(self) -> "list[ShardStatus]":
        """Per-shard health snapshots (also refreshes the skew gauge)."""
        statuses = [
            ShardStatus(
                index=index,
                directory=str(shard.directory),
                groups=len(shard),
                generation=shard.generation,
                wal_records=shard.wal_records,
                wal_bytes=shard.wal_bytes,
                durable_lsn=shard.durable_lsn,
            )
            for index, shard in enumerate(self._shards)
        ]
        _SKEW.set(self.skew())
        return statuses

    def skew(self) -> float:
        """Largest shard's group count over the mean (1.0 = balanced)."""
        counts = [len(shard) for shard in self._shards]
        total = sum(counts)
        if not total:
            return 1.0
        return max(counts) * len(counts) / total

    def sync_replicas(self) -> "list":
        """Ship every shard's WAL to its follower (``replica-NNNN``).

        Creates the follower directories on first use; repeat calls ship
        exactly what accumulated since the last one. A replica directory
        is itself a valid store directory, so a second-tier shipper can
        chain from it. Returns one :class:`~repro.store.ShipResult` per
        shard.
        """
        from repro.store import FollowerStore, WalShipper

        results = []
        for index, shard in enumerate(self._shards):
            with FollowerStore.open(
                replica_path(self._root, index), fsync=self._fsync
            ) as follower:
                results.append(WalShipper(shard.directory).sync(follower))
        return results

    # -- rebalancing -----------------------------------------------------------

    def rebalance(self, new_shards: int) -> RebalanceResult:
        """Change the fan-out to ``new_shards``, shipping whole sketches.

        No re-ingest: a moved group's sketch is serialized once, merged
        into its new owner's WAL, and dropped from the old one. Fenced
        (cutover records in every WAL) and journaled (crash at any point
        recovers forward on the next :meth:`open`). The store keeps
        serving routed reads/writes under the *new* fan-out when this
        returns.
        """
        if new_shards < 1:
            raise ValueError(f"shards must be >= 1, got {new_shards}")
        if new_shards == len(self._shards):
            raise ValueError(f"cluster already has {new_shards} shards")
        epoch = self._meta.epoch + 1
        write_journal(self._root, epoch, len(self._shards), new_shards)
        self._crash_point("journal")
        return self._run_rebalance(new_shards, epoch, resumed=False)

    def _recover_rebalance(self, journal: "tuple[int, int, int]") -> None:
        """Complete (or clean up) the rebalance a dead process left behind."""
        epoch, from_shards, to_shards = journal
        if self._meta.epoch >= epoch:
            # The meta flip (commit point) happened: only cleanup remains.
            self._cleanup_rebalance(to_shards)
            clear_journal(self._root)
            return
        if self._meta.shards != from_shards:
            from repro.storage.serialization import SerializationError

            raise SerializationError(
                f"{self._root}: rebalance journal expects {from_shards} "
                f"shards but the cluster has {self._meta.shards}"
            )
        self._run_rebalance(to_shards, epoch, resumed=True)

    def _run_rebalance(
        self, new_shards: int, epoch: int, resumed: bool
    ) -> RebalanceResult:
        old_shards = len(self._shards)
        with _trace.span(
            "cluster.rebalance", from_shards=old_shards, to_shards=new_shards
        ):
            # Fence: the begin record is the last thing every
            # pre-rebalance WAL carries before sketches start moving.
            begin = encode_cutover(epoch, old_shards, new_shards, CUTOVER_BEGIN)
            for shard in self._shards:
                shard.append_cutover(begin)
            self._crash_point("begin")
            # Grow: destination shards exist before anything ships.
            config = self._meta.config
            t, d, p, sparse, seed = config
            for index in range(old_shards, new_shards):
                self._shards.append(
                    self._open_shard(index, t=t, d=d, p=p, sparse=sparse, seed=seed)
                )
            self._crash_point("grow")
            # Copy: ship whole group sketches to their new owners. Merge
            # is register-max, so a resumed rebalance re-shipping a group
            # it already shipped changes nothing.
            moved = 0
            shipped = 0
            for index, shard in enumerate(self._shards[:old_shards]):
                for key in list(shard.groups()):
                    owner = shard_of(key, new_shards)
                    if owner == index:
                        continue
                    sketch = shard.group_sketch(key)
                    shipped += len(sketch_to_blob(sketch))
                    self._shards[owner].merge_sketch(key, sketch)
                    moved += 1
            self._crash_point("copy")
            # Drop: sources forget what they no longer own (idempotent —
            # a re-dropped group is a no-op record).
            for index, shard in enumerate(self._shards[:old_shards]):
                for key in list(shard.groups()):
                    if shard_of(key, new_shards) != index:
                        shard.drop_group(key)
            self._crash_point("drop")
            # Fence: every post-rebalance WAL records the commit.
            commit = encode_cutover(epoch, old_shards, new_shards, CUTOVER_COMMIT)
            for shard in self._shards:
                shard.append_cutover(commit)
            self._crash_point("commit")
            # The commit point: flip the topology atomically.
            self._meta = ClusterMeta(
                shards=new_shards, epoch=epoch, config=self._meta.config
            )
            write_meta(self._root, self._meta)
            self._crash_point("meta")
            self._cleanup_rebalance(new_shards)
            clear_journal(self._root)
        self._counters = [
            _metrics.counter(
                "cluster.append_records",
                "WAL records routed to each shard.",
                labels={"shard": str(index)},
            )
            for index in range(len(self._shards))
        ]
        if _metrics.enabled():
            _REBALANCES.inc()
            _REBALANCE_MOVED.inc(moved)
            _REBALANCE_BYTES.inc(shipped)
            _SKEW.set(self.skew())
        return RebalanceResult(
            from_shards=old_shards,
            to_shards=new_shards,
            epoch=epoch,
            moved_groups=moved,
            shipped_bytes=shipped,
            resumed=resumed,
        )

    def _cleanup_rebalance(self, new_shards: int) -> None:
        """Retire drained shard directories after a shrink's commit."""
        for shard in self._shards[new_shards:]:
            shard.close()
            shutil.rmtree(shard.directory, ignore_errors=True)
        del self._shards[new_shards:]
        # A crash between the meta flip and this cleanup reopens with only
        # the surviving shards in memory; drained directories may still sit
        # on disk (shard indices are contiguous, so scan forward).
        index = len(self._shards)
        while True:
            stray = shard_path(self._root, index)
            if not stray.exists():
                break
            shutil.rmtree(stray, ignore_errors=True)
            index += 1

    def _crash_point(self, stage: str) -> None:
        if self._crash_after == stage:
            raise SimulatedCrash(f"simulated crash after rebalance stage {stage!r}")

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        for shard in self._shards:
            shard.close()

    def __enter__(self) -> "ShardedStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ShardedStore(root={str(self._root)!r}, shards={len(self._shards)}, "
            f"epoch={self._meta.epoch}, groups={len(self)})"
        )
