"""Scatter-gather reads over a sharded cluster: one ``SketchSource``.

A cluster is N independent stores, but a query should not care: this
module folds them back into the one read surface everything else speaks
(:class:`repro.query.source.SketchSource`), so the planner, executor and
dialect run over a cluster exactly as over a single store.

The routing invariant makes every operation exact, not approximate:

* each group key lives on exactly one shard (``shard_of(key, N)``), so
  ``groups()`` is a plain concatenation and ``group_sketch`` a single
  routed point-read;
* ``estimates()`` gathers every shard's sketches and runs **one**
  batched solve over the concatenated register stacks — bit-identical to
  per-shard (and per-sketch) estimation, because batch composition never
  changes a row's result;
* ``top(count)`` asks each shard for its local top ``count`` (each local
  estimate already *is* the global estimate — groups don't span shards)
  and exactly re-ranks the ≤ ``N * count`` survivors, ties broken by
  ascending key like the executor's ``TopK``.
"""

from __future__ import annotations

import pathlib
from typing import Any, Hashable, Iterator, Sequence

from repro.hashing import to_bytes
from repro.parallel.shard import shard_of


class ClusterSource:
    """A :class:`~repro.query.source.SketchSource` over per-shard sources.

    ``sources`` is indexed by shard id: ``sources[i]`` must hold exactly
    the groups with ``shard_of(key, len(sources)) == i``. Any protocol
    source works as a member — live :class:`~repro.store.SketchStore`
    writers, lock-free :class:`~repro.store.SnapshotReader` views, or
    :class:`~repro.store.FollowerStore` replicas — and members may be
    mixed (e.g. reading one shard from its replica).
    """

    def __init__(self, sources: Sequence[Any]) -> None:
        if not sources:
            raise ValueError("a cluster needs at least one shard source")
        sources = tuple(sources)
        config = sources[0].config
        for index, source in enumerate(sources[1:], start=1):
            if tuple(source.config) != tuple(config):
                raise ValueError(
                    f"shard {index} configuration {tuple(source.config)} differs "
                    f"from shard 0 {tuple(config)}; a cluster's sketches must "
                    "be mergeable (identical parameters)"
                )
        self._sources = sources

    @classmethod
    def open(cls, root, reader: bool = False) -> "ClusterSource":
        """Open every shard of a cluster directory for querying.

        ``reader=False`` opens read-only :class:`~repro.store.SketchStore`
        views (durable prefix at open time); ``reader=True`` opens
        lock-free :class:`~repro.store.SnapshotReader` tails instead —
        safe against live shard writers and refreshable via
        :meth:`refresh`. Close with :meth:`close`.
        """
        from repro.cluster.meta import read_meta, shard_path
        from repro.store import SketchStore, SnapshotReader

        root = pathlib.Path(root)
        meta = read_meta(root)
        if meta is None:
            raise FileNotFoundError(
                f"{root}: not a cluster directory (no cluster.json; "
                "initialise with ShardedStore.open(root, shards=N))"
            )
        sources = []
        try:
            for index in range(meta.shards):
                path = shard_path(root, index)
                if reader:
                    sources.append(SnapshotReader.open(path))
                else:
                    sources.append(SketchStore.open(path, read_only=True))
        except BaseException:
            for source in sources:
                source.close()
            raise
        return cls(sources)

    # -- topology --------------------------------------------------------------

    @property
    def shard_sources(self) -> tuple:
        """The per-shard sources, indexed by shard id."""
        return self._sources

    @property
    def shards(self) -> int:
        return len(self._sources)

    @property
    def config(self) -> tuple:
        return self._sources[0].config

    def shard_of(self, group: Hashable) -> int:
        """The shard id owning ``group`` under this cluster's fan-out."""
        return shard_of(to_bytes(group) if not isinstance(group, bytes) else group,
                        len(self._sources))

    def source_for(self, group: Hashable):
        """The shard source owning ``group``."""
        return self._sources[self.shard_of(group)]

    # -- SketchSource protocol -------------------------------------------------

    def groups(self) -> Iterator[bytes]:
        for source in self._sources:
            yield from source.groups()

    def group_sketch(self, group: Hashable):
        """One routed point-read (the owning shard's cheapest path)."""
        return self.source_for(group).group_sketch(group)

    def estimate(self, group: Hashable) -> float:
        from repro.estimation.batch import batch_estimate_sketches

        sketch = self.group_sketch(group)
        if sketch is None:
            return 0.0
        return batch_estimate_sketches([sketch])[0]

    def _keyed_sketches(self) -> "dict[bytes, Any]":
        """Every shard's key → sketch mapping, gathered (no copies when live).

        Shards own disjoint key sets, so the union is exactly the
        single-store mapping; sources without a live in-memory mapping
        (protocol-only members) fall back to per-key fetches.
        """
        merged: "dict[bytes, Any]" = {}
        for source in self._sources:
            aggregator = getattr(source, "aggregator", None)
            if aggregator is not None:
                merged.update(aggregator._groups)
                continue
            groups = getattr(source, "_groups", None)
            if groups is not None:
                merged.update(groups)
                continue
            for key in source.groups():
                sketch = source.group_sketch(key)
                if sketch is not None:
                    merged[key] = sketch
        return merged

    def estimates(self) -> "dict[bytes, float]":
        """All shards' estimates via one batched solve (scatter-gather)."""
        from repro.estimation.batch import batch_estimates_by_key

        return batch_estimates_by_key(self._keyed_sketches())

    def top(self, count: int) -> "list[tuple[bytes, float]]":
        """Global top ``count`` from per-shard partial top-``count`` lists.

        Exact: groups never span shards, so a shard's local estimate is
        the global one, and the global top ``count`` is a subset of the
        union of the locals. Survivors re-rank by descending estimate,
        ties by ascending key (the executor's ``TopK`` order).
        """
        if count <= 0:
            return []
        survivors: "list[tuple[bytes, float]]" = []
        for source in self._sources:
            survivors.extend(source.top(count))
        survivors.sort(key=lambda kv: (-kv[1], kv[0]))
        return survivors[:count]

    def __len__(self) -> int:
        return sum(len(source) for source in self._sources)

    def __contains__(self, group: Hashable) -> bool:
        return group in self.source_for(group)

    # -- lifecycle -------------------------------------------------------------

    def refresh(self) -> list:
        """Refresh every member that supports it (reader-backed clusters)."""
        results = []
        for source in self._sources:
            refresh = getattr(source, "refresh", None)
            if callable(refresh):
                results.append(refresh())
        return results

    def close(self) -> None:
        for source in self._sources:
            close = getattr(source, "close", None)
            if callable(close):
                close()

    def __enter__(self) -> "ClusterSource":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        kinds = {type(source).__name__ for source in self._sources}
        return (
            f"ClusterSource(shards={len(self._sources)}, "
            f"members={sorted(kinds)})"
        )
