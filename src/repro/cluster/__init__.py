"""Horizontal sharding: a hash-partitioned, exactly-mergeable cluster.

:class:`ShardedStore` routes writes by ``shard_of(key, N)`` to N
independent :class:`~repro.store.SketchStore` shards and rebalances by
shipping whole group sketches (Algorithm 5 merges are exact, so the
cluster is bit-identical to a single store). :class:`ClusterSource`
folds the shards back into one :class:`~repro.query.source.SketchSource`
for scatter-gather reads.
"""

from repro.cluster.meta import (
    CUTOVER_BEGIN,
    CUTOVER_COMMIT,
    ClusterMeta,
    clear_journal,
    decode_cutover,
    encode_cutover,
    read_journal,
    read_meta,
    replica_path,
    shard_path,
    write_journal,
    write_meta,
)
from repro.cluster.sharded import (
    RebalanceResult,
    ShardedStore,
    ShardStatus,
    SimulatedCrash,
)
from repro.cluster.source import ClusterSource

__all__ = [
    "CUTOVER_BEGIN",
    "CUTOVER_COMMIT",
    "ClusterMeta",
    "ClusterSource",
    "RebalanceResult",
    "ShardStatus",
    "ShardedStore",
    "SimulatedCrash",
    "clear_journal",
    "decode_cutover",
    "encode_cutover",
    "read_journal",
    "read_meta",
    "replica_path",
    "shard_path",
    "write_journal",
    "write_meta",
]
