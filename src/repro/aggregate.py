"""Group-by distinct-count aggregation (the database use case of Sec. 1).

Query engines expose ``APPROX_COUNT_DISTINCT(x) GROUP BY g`` built on HLL;
this module provides the equivalent building block on ExaLogLog: one small
sketch per group, mergeable across partial aggregations (the shuffle/merge
stage of a distributed GROUP BY), serializable as a whole.

Group keys are stored in the canonical byte encoding of
:func:`repro.hashing.to_bytes` (strings UTF-8 encoded, ints little-endian
two's complement, bytes passed through), so ``estimates()`` and
``groups()`` yield ``bytes`` keys; :meth:`DistinctCountAggregator.decode_key`
recovers a display form.

Example::

    from repro.aggregate import DistinctCountAggregator

    agg = DistinctCountAggregator(t=2, d=20, p=8)
    for country, user in events:
        agg.add(country, user)
    agg.merge_inplace(other_partition_agg)
    print(agg.estimates())       # {b"DE": 10234.1, b"AT": 512.9, ...}
    print({agg.decode_key(k): v for k, v in agg.estimates().items()})

``decode_key`` assumes string groups; keys that are not printable UTF-8
(integer groups, arbitrary bytes) come back as their hex digest, from
which ``bytes.fromhex`` recovers the canonical key exactly::

    agg.add(1, "alice")                      # integer group
    [key] = agg.groups()
    assert agg.decode_key(key) == key.hex()  # '01000000...'
    assert bytes.fromhex(agg.decode_key(key)) == key
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable, Iterator, Mapping

from repro.core.exaloglog import ExaLogLog
from repro.core.sparse import SparseExaLogLog
from repro.hashing import hash64, to_bytes
from repro.storage.serialization import (
    SerializationError,
    read_uvarint,
    write_header,
    write_uvarint,
    read_header,
)

#: Sketch tag for serialized aggregators.
TAG_AGGREGATOR = 0x30


class DistinctCountAggregator:
    """Per-group approximate distinct counting with mergeable state.

    Parameters mirror :class:`~repro.core.exaloglog.ExaLogLog`;
    ``sparse=True`` (default) starts every group in token mode so that
    aggregations with many small groups stay small (Sec. 4.3's motivation).
    """

    __slots__ = ("_d", "_groups", "_p", "_seed", "_sparse", "_t")

    def __init__(
        self,
        t: int = 2,
        d: int = 20,
        p: int = 8,
        sparse: bool = True,
        seed: int = 0,
    ) -> None:
        self._t = t
        self._d = d
        self._p = p
        self._sparse = sparse
        self._seed = seed
        self._groups: dict[bytes, ExaLogLog | SparseExaLogLog] = {}
        # Validate parameters eagerly by building a throwaway sketch.
        self._new_sketch()

    def _new_sketch(self) -> ExaLogLog | SparseExaLogLog:
        if self._sparse:
            return SparseExaLogLog(self._t, self._d, self._p)
        return ExaLogLog(self._t, self._d, self._p)

    @staticmethod
    def _group_key(group: Hashable) -> bytes:
        return to_bytes(group)

    @staticmethod
    def decode_key(key: bytes) -> str:
        """Display form of a canonical group key.

        The :func:`repro.hashing.to_bytes` encoding is not
        self-describing, so this assumes the common case of string
        groups (UTF-8) and falls back to the hex digest for keys that
        don't decode to printable text — e.g. integer groups, whose
        little-endian padding decodes to NUL-laden strings.
        """
        try:
            decoded = key.decode("utf-8")
        except UnicodeDecodeError:
            return key.hex()
        return decoded if decoded.isprintable() else key.hex()

    @property
    def _config(self) -> tuple[int, int, int, bool, int]:
        """The (t, d, p, sparse, seed) tuple shard workers rebuild from."""
        return (self._t, self._d, self._p, self._sparse, self._seed)

    @property
    def config(self) -> tuple[int, int, int, bool, int]:
        """The ``(t, d, p, sparse, seed)`` configuration tuple.

        Part of the :class:`repro.query.SketchSource` protocol: two
        sources with equal configurations hold mergeable, comparable
        sketches.
        """
        return self._config

    @classmethod
    def _from_keyed_hashes(
        cls,
        config: tuple[int, int, int, bool, int],
        keyed_hashes: "Iterable[tuple[bytes, Any]]",
    ) -> "DistinctCountAggregator":
        """Build a fresh aggregator from ``(canonical key, hash array)`` pairs.

        The partial-aggregator constructor of the sharded path (see
        :mod:`repro.parallel.shard`): each group's sketch is fed its hash
        segment through the bulk path, exactly as the sequential scatter
        would.
        """
        t, d, p, sparse, seed = config
        aggregator = cls(t, d, p, sparse, seed)
        for key, hashes in keyed_hashes:
            sketch = aggregator._groups.get(key)
            if sketch is None:
                sketch = aggregator._new_sketch()
                aggregator._groups[key] = sketch
            sketch.add_hashes(hashes)
        return aggregator

    # -- accumulation ----------------------------------------------------------

    def add(self, group: Hashable, item: Any) -> "DistinctCountAggregator":
        """Record ``item`` under ``group``; returns ``self``."""
        key = self._group_key(group)
        sketch = self._groups.get(key)
        if sketch is None:
            sketch = self._new_sketch()
            self._groups[key] = sketch
        sketch.add_hash(hash64(item, self._seed))
        return self

    def add_pairs(self, pairs: Iterable[tuple[Hashable, Any]]) -> "DistinctCountAggregator":
        """Record an iterable of ``(group, item)`` pairs.

        Streams in bounded chunks through :meth:`add_batch`, so unbounded
        iterators keep O(chunk) extra memory; batch equivalence to the
        per-item loop makes chunking invisible in the result.
        """
        import itertools

        from repro.backends.bulk import BULK_CHUNK

        iterator = iter(pairs)
        while chunk := list(itertools.islice(iterator, BULK_CHUNK)):
            groups, items = zip(*chunk)
            self.add_batch(groups, list(items))
        return self

    def _segments(
        self, groups: "Iterable[Hashable]", items: Any
    ) -> list[tuple[bytes, Any]]:
        """One batch's per-group hash segments: ``(canonical key, hashes)``.

        One vectorised hash pass over ``items``, then a factorise + stable
        sort scatter; the shared front end of the in-memory, sharded and
        spilled GROUP BY paths.
        """
        import numpy as np

        from repro.hashing.batch import hash_items

        hashes = hash_items(items, self._seed)
        # ndarray.tolist() yields Python scalars, which the canonical
        # to_bytes key encoding accepts (NumPy scalars are not ints).
        groups = groups.tolist() if isinstance(groups, np.ndarray) else list(groups)
        if len(groups) != len(hashes):
            raise ValueError(
                f"group/item length mismatch: {len(groups)} vs {len(hashes)}"
            )
        if not groups:
            return []
        # Factorise group keys to integer codes (first-appearance order).
        keys: list[bytes] = []
        code_of: dict[bytes, int] = {}
        codes = np.empty(len(groups), dtype=np.int64)
        for position, group in enumerate(groups):
            key = self._group_key(group)
            code = code_of.get(key)
            if code is None:
                code = len(keys)
                code_of[key] = code
                keys.append(key)
            codes[position] = code
        # Scatter: stable sort by code, then one bulk insert per segment.
        order = np.argsort(codes, kind="stable")
        sorted_codes = codes[order]
        boundaries = np.flatnonzero(np.diff(sorted_codes)) + 1
        starts = np.concatenate(([0], boundaries))
        ends = np.concatenate((boundaries, [len(order)]))
        return [
            (keys[int(sorted_codes[start])], hashes[order[start:end]])
            for start, end in zip(starts.tolist(), ends.tolist())
        ]

    def add_batch(
        self,
        groups: "Iterable[Hashable]",
        items: Any,
        workers: int | None = None,
        spill=None,
    ) -> "DistinctCountAggregator":
        """Record ``items[i]`` under ``groups[i]`` for a whole batch.

        One vectorised hash pass over ``items`` (NumPy integer/float
        arrays hash without a Python-level loop), then a per-group
        scatter feeding each group's sketch through its bulk
        ``add_hashes`` path. Estimates are exactly those of the
        equivalent per-item :meth:`add` loop.

        ``workers`` opts into the sharded fold of
        :func:`repro.parallel.parallel_group_fold`: group keys are
        hash-partitioned across worker shards (the shuffle stage of a
        distributed GROUP BY), partial aggregators build in parallel and
        merge back through the exact :meth:`merge_inplace` — same final
        state as the single-process scatter.

        ``spill`` routes the batch to a
        :class:`repro.store.SpilledGroupBy` (or any object with
        ``write_segments``) instead of this aggregator's in-memory
        groups: the external GROUP BY path for aggregations whose group
        count exceeds RAM. The spill target — not ``self`` — then owns
        the batch's state; results come from its partition merge.
        ``workers`` composes: the segments are forwarded for a parallel
        spill write (shard workers appending their own partition files).
        """
        segments = self._segments(groups, items)
        if not segments:
            return self
        if spill is not None:
            spill_config = getattr(spill, "config", None)
            if spill_config is not None and spill_config != self._config:
                raise ValueError(
                    f"spill target configuration {spill_config} differs from "
                    f"aggregator configuration {self._config}"
                )
            if workers is not None and workers > 1 and len(segments) > 1:
                spill.write_segments(segments, workers=workers)
            else:
                spill.write_segments(segments)
            return self
        if workers is not None and workers > 1 and len(segments) > 1:
            from repro.parallel import parallel_group_fold

            for partial in parallel_group_fold(self._config, segments, workers):
                self.merge_inplace(partial)
            return self
        for key, segment_hashes in segments:
            sketch = self._groups.get(key)
            if sketch is None:
                sketch = self._new_sketch()
                self._groups[key] = sketch
            sketch.add_hashes(segment_hashes)
        return self

    # -- queries -----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._groups)

    def __contains__(self, group: Hashable) -> bool:
        return self._group_key(group) in self._groups

    def groups(self) -> Iterator[bytes]:
        """The observed group keys (canonical byte form)."""
        return iter(self._groups)

    def estimate(self, group: Hashable) -> float:
        """Distinct-count estimate for one group (0 for unseen groups)."""
        sketch = self._groups.get(self._group_key(group))
        return sketch.estimate() if sketch is not None else 0.0

    def group_sketch(self, group: Hashable):
        """A private copy of one group's sketch (``None`` for unseen groups).

        The :class:`repro.query.SketchSource` selective-read surface:
        callers may merge the result in place without affecting this
        aggregator's state.
        """
        sketch = self._groups.get(self._group_key(group))
        return sketch.copy() if sketch is not None else None

    def estimates(self) -> dict[bytes, float]:
        """All group estimates, computed in one batched solve.

        Every group's sketch is stacked into one coefficient matrix —
        dense registers through the vectorised Algorithm 3, sparse token
        groups through Algorithm 7 — and a single simultaneous Newton
        iteration (:func:`repro.estimation.batch.solve_ml_equations`)
        produces all estimates at once, bit-identical to calling
        ``sketch.estimate()`` per group but orders of magnitude faster at
        scale. A million-group aggregation resolves in one call::

            agg = DistinctCountAggregator(p=8)
            agg.add_batch(group_array, item_array)   # ... many batches
            by_group = agg.estimates()               # one vectorised solve
            heaviest = agg.top(10)                   # top-k without full sort
        """
        from repro.estimation.batch import batch_estimates_by_key

        return batch_estimates_by_key(self._groups)

    def top(self, count: int) -> list[tuple[bytes, float]]:
        """The ``count`` groups with the largest estimates.

        Selects via ``np.argpartition`` on the batched estimate vector —
        O(groups) instead of a full sort — with ties broken by insertion
        order exactly like a full stable descending sort.
        """
        from repro.estimation.batch import batch_top

        return batch_top(self._groups, count)

    def _top_scalar(self, count: int) -> list[tuple[bytes, float]]:
        """Scalar top-k via ``heapq.nlargest`` (same ranking semantics).

        ``nlargest`` is equivalent to a stable descending sort prefix, so
        ties break by insertion order exactly like :meth:`top`.
        """
        import heapq

        return heapq.nlargest(
            count,
            ((key, sketch.estimate()) for key, sketch in self._groups.items()),
            key=lambda kv: kv[1],
        )

    def total_memory_bytes(self) -> int:
        """Modelled footprint across all groups."""
        return sum(sketch.memory_bytes for sketch in self._groups.values())

    # -- merge --------------------------------------------------------------------

    def merge_inplace(self, other: "DistinctCountAggregator") -> "DistinctCountAggregator":
        """Union with another aggregator of identical configuration."""
        if not isinstance(other, DistinctCountAggregator):
            raise TypeError(
                f"cannot merge DistinctCountAggregator with {type(other).__name__}"
            )
        if self._config != other._config:
            raise ValueError("aggregator configurations differ")
        for key, sketch in other._groups.items():
            mine = self._groups.get(key)
            if mine is None:
                self._groups[key] = sketch.copy()
            else:
                mine.merge_inplace(sketch)
        return self

    def merge(self, other: "DistinctCountAggregator") -> "DistinctCountAggregator":
        result = self.copy()
        return result.merge_inplace(other)

    def copy(self) -> "DistinctCountAggregator":
        clone = DistinctCountAggregator(
            self._t, self._d, self._p, self._sparse, self._seed
        )
        clone._groups = {key: sketch.copy() for key, sketch in self._groups.items()}
        return clone

    # -- serialization ----------------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialize all groups (length-prefixed inner sketch blobs)."""
        buffer = write_header(TAG_AGGREGATOR)
        buffer.extend((self._t, self._d, self._p, 1 if self._sparse else 0))
        write_uvarint(buffer, self._seed)
        write_uvarint(buffer, len(self._groups))
        for key in sorted(self._groups):
            blob = self._groups[key].to_bytes()
            write_uvarint(buffer, len(key))
            buffer.extend(key)
            write_uvarint(buffer, len(blob))
            buffer.extend(blob)
        return bytes(buffer)

    @classmethod
    def from_bytes(cls, data: bytes) -> "DistinctCountAggregator":
        offset = read_header(data, TAG_AGGREGATOR)
        if len(data) < offset + 4:
            raise SerializationError("truncated aggregator parameters")
        t, d, p, sparse_flag = data[offset : offset + 4]
        offset += 4
        seed, offset = read_uvarint(data, offset)
        count, offset = read_uvarint(data, offset)
        aggregator = cls(t, d, p, bool(sparse_flag), seed)
        for _ in range(count):
            key_length, offset = read_uvarint(data, offset)
            key = bytes(data[offset : offset + key_length])
            if len(key) != key_length:
                raise SerializationError("truncated aggregator group key")
            offset += key_length
            blob_length, offset = read_uvarint(data, offset)
            blob = bytes(data[offset : offset + blob_length])
            if len(blob) != blob_length:
                raise SerializationError("truncated aggregator group payload")
            offset += blob_length
            if sparse_flag:
                aggregator._groups[key] = SparseExaLogLog.from_bytes(blob)
            else:
                aggregator._groups[key] = ExaLogLog.from_bytes(blob)
        if offset != len(data):
            raise SerializationError(
                f"{len(data) - offset} trailing bytes after aggregator payload"
            )
        return aggregator

    @classmethod
    def read_group_from_bytes(cls, data, key: bytes):
        """Deserialize only ``key``'s sketch from a serialized aggregator.

        The selective-read counterpart of :meth:`from_bytes` for the
        store's snapshot files: entries are skipped by their length
        prefixes, so the scan touches no other group's sketch payload —
        and since :meth:`to_bytes` writes keys in sorted order, the scan
        stops at the first key past the target. Returns ``None`` for an
        absent group. ``data`` may be any buffer (bytes, memoryview over
        an ``mmap``).
        """
        offset = read_header(data, TAG_AGGREGATOR)
        if len(data) < offset + 4:
            raise SerializationError("truncated aggregator parameters")
        sparse_flag = data[offset + 3]
        offset += 4
        _seed, offset = read_uvarint(data, offset)
        count, offset = read_uvarint(data, offset)
        for _ in range(count):
            key_length, offset = read_uvarint(data, offset)
            entry_key = bytes(data[offset : offset + key_length])
            if len(entry_key) != key_length:
                raise SerializationError("truncated aggregator group key")
            offset += key_length
            blob_length, offset = read_uvarint(data, offset)
            if offset + blob_length > len(data):
                raise SerializationError("truncated aggregator group payload")
            if entry_key == key:
                blob = bytes(data[offset : offset + blob_length])
                if sparse_flag:
                    return SparseExaLogLog.from_bytes(blob)
                return ExaLogLog.from_bytes(blob)
            if entry_key > key:
                return None  # keys are sorted: the target cannot follow
            offset += blob_length
        return None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DistinctCountAggregator):
            return NotImplemented
        return self._config == other._config and self._groups == other._groups

    def __repr__(self) -> str:
        return (
            f"DistinctCountAggregator(t={self._t}, d={self._d}, p={self._p}, "
            f"groups={len(self._groups)})"
        )
