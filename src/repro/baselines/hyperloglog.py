"""HyperLogLog (paper Alg. 1; Flajolet et al. 2007, Heule et al. 2013).

The standard algorithm for approximate distinct counting and the yardstick
every row of Table 2 is measured against. A register stores the maximum of
geometrically distributed update values ``k = nlz(masked hash) - p + 1``;
``m = 2**p`` registers of 6 bits give a relative standard error of about
``1.04/sqrt(m)`` up to distinct counts of order 2**64.

Statistically, HyperLogLog is ExaLogLog's special case ELL(0, 0)
(Sec. 2.5), so this class delegates ML estimation — Ertl's estimator
[arXiv:1702.01284], the one the paper benchmarks as "HLL, ML estimator" —
to the shared Algorithm 3 / Algorithm 8 machinery with parameters
``(t=0, d=0, p)``. The bit layout follows Algorithm 1 (index from the top
``p`` hash bits), faithful to standard implementations.

Three estimators are exposed:

* ``estimate()`` / ``estimate_ml()`` — the ML estimator (default).
* ``estimate_raw()`` — the original estimator with the alpha_m constant and
  small-range linear counting (kept mainly because HyperLogLogLog relies on
  it, error spike included).
* :class:`MartingaleHyperLogLog` — HIP estimation for non-distributed use.

Register width is configurable (6 bits standard, 8 bits for the
DataSketches HLL8 variant of Table 2, which trades space for byte-aligned
register access; values are identical, only storage differs).
"""

from __future__ import annotations

import math
import struct

from repro.baselines.base import OBJECT_OVERHEAD_BYTES, DistinctCounter
from repro.core.mlestimation import compute_coefficients, estimate_from_coefficients
from repro.core.params import make_params
from repro.storage.packed import PackedArray
from repro.storage.serialization import (
    HEADER_SIZE,
    SerializationError,
    TAG_HYPERLOGLOG,
    read_header,
    write_header,
)


def hll_index_and_value(hash_value: int, p: int) -> tuple[int, int]:
    """Algorithm 1: register index (top ``p`` bits) and update value.

    ``k = nlz(hash with top p bits masked) - p + 1`` lies in ``[1, 65-p]``.
    """
    index = hash_value >> (64 - p)
    masked = hash_value & ((1 << (64 - p)) - 1)
    nlz = 64 - masked.bit_length()
    return index, nlz - p + 1


def _alpha_m(m: int) -> float:
    """The bias-correction constant of the original raw estimator."""
    if m == 16:
        return 0.673
    if m == 32:
        return 0.697
    if m == 64:
        return 0.709
    return 0.7213 / (1.0 + 1.079 / m)


class HyperLogLog(DistinctCounter):
    """HyperLogLog with 6-bit (default) or 8-bit registers."""

    __slots__ = ("_m", "_p", "_register_width", "_registers")

    def __init__(self, p: int = 11, register_width: int = 6) -> None:
        if not 2 <= p <= 26:
            raise ValueError(f"p must be in [2, 26], got {p}")
        if register_width not in (6, 8):
            raise ValueError(f"register width must be 6 or 8, got {register_width}")
        self._p = p
        self._m = 1 << p
        self._register_width = register_width
        self._registers = [0] * self._m

    @property
    def p(self) -> int:
        return self._p

    @property
    def m(self) -> int:
        return self._m

    @property
    def register_width(self) -> int:
        return self._register_width

    @property
    def registers(self) -> tuple[int, ...]:
        return tuple(self._registers)

    @property
    def is_empty(self) -> bool:
        return not any(self._registers)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(p={self._p}, "
            f"register_width={self._register_width})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HyperLogLog):
            return NotImplemented
        return (
            self._p == other._p
            and self._register_width == other._register_width
            and self._registers == other._registers
        )

    # -- operations -------------------------------------------------------------

    def add_hash(self, hash_value: int) -> bool:
        index, k = hll_index_and_value(hash_value, self._p)
        if k > self._registers[index]:
            self._registers[index] = k
            return True
        return False

    def add_hashes(self, hashes) -> "HyperLogLog":
        """Vectorised bulk insert: fold the batch, then element-wise max."""
        import numpy as np

        from repro.backends import as_hash_array, hyperloglog_registers

        hashes = as_hash_array(hashes)
        if len(hashes):
            batch = hyperloglog_registers(hashes, self._p)
            existing = np.asarray(self._registers, dtype=np.int64)
            self._registers = np.maximum(existing, batch).tolist()
        return self

    def estimate(self) -> float:
        return self.estimate_ml()

    def estimate_ml(self, bias_correction: bool = True) -> float:
        """Ertl's ML estimator via the shared ELL(0, 0) machinery.

        For ``m >= 1024`` this routes through the vectorised batch engine
        (bit-identical to the scalar Algorithm 3 + Algorithm 8 pipeline).
        """
        params = make_params(0, 0, self._p)
        if self._m >= 1024:
            return float(self.estimate_ml_many([self], bias_correction)[0])
        coefficients = compute_coefficients(self._registers, params)
        return estimate_from_coefficients(coefficients, params, bias_correction)

    @classmethod
    def estimate_ml_many(cls, sketches, bias_correction: bool = True):
        """Vectorised ML estimates for many same-``p`` HLL sketches.

        Stacks the register arrays into one matrix and solves every
        sketch in a single simultaneous Newton iteration
        (:func:`repro.estimation.batch.estimate_registers` with the
        ELL(0, 0) parameters); returns a float64 array.
        """
        import numpy as np

        from repro.estimation.batch import estimate_registers

        if not sketches:
            return np.zeros(0)
        p = sketches[0].p
        if any(sketch.p != p for sketch in sketches):
            raise ValueError("sketches must share the same precision p")
        matrix = np.array([sketch._registers for sketch in sketches], dtype=np.int64)
        return estimate_registers(matrix, make_params(0, 0, p), bias_correction)

    def estimate_raw(self) -> float:
        """The original Flajolet estimator with small-range linear counting.

        Known to have a bias spike near the linear-counting hand-over
        (~2.5 m); kept faithful because Sec. 5.2 attributes HyperLogLogLog's
        Figure 10 spike to exactly this estimator. The harmonic sum is
        accumulated per register *value* in ascending order — the canonical
        form the vectorised :meth:`estimate_raw_many` reproduces bit for bit.
        """
        return float(self.estimate_raw_many([self])[0])

    @classmethod
    def estimate_raw_many(cls, sketches):
        """Vectorised original estimator for many same-``p`` HLL sketches."""
        import numpy as np

        if not sketches:
            return np.zeros(0)
        m = sketches[0].m
        if any(sketch.m != m for sketch in sketches):
            raise ValueError("sketches must share the same precision p")
        matrix = np.array([sketch._registers for sketch in sketches], dtype=np.int64)
        k = len(sketches)
        values = int(matrix.max()) + 1
        flat = (np.arange(k, dtype=np.int64)[:, None] * np.int64(values) + matrix).ravel()
        counts = np.bincount(flat, minlength=k * values).reshape(k, values)
        harmonic = np.zeros(k)
        for value in range(values):
            harmonic += counts[:, value] * math.ldexp(1.0, -value)
        zeros = counts[:, 0]
        raw = (_alpha_m(m) * m * m) / harmonic
        estimates = raw.copy()
        # math.log per affected row: bit-identical to the scalar formula.
        for i in np.flatnonzero((raw <= 2.5 * m) & (zeros > 0)).tolist():
            estimates[i] = m * math.log(m / int(zeros[i]))
        return estimates

    def merge_inplace(self, other: DistinctCounter) -> "HyperLogLog":
        if not isinstance(other, HyperLogLog) or other._p != self._p:
            raise ValueError(f"cannot merge {self!r} with {other!r}")
        registers = self._registers
        for i, value in enumerate(other._registers):
            if value > registers[i]:
                registers[i] = value
        return self

    def copy(self) -> "HyperLogLog":
        clone = type(self)(self._p, self._register_width)
        clone._registers = list(self._registers)
        return clone

    # -- sizes and serialization ---------------------------------------------------

    @property
    def register_array_bytes(self) -> int:
        return (self._register_width * self._m + 7) // 8

    @property
    def memory_bytes(self) -> int:
        return OBJECT_OVERHEAD_BYTES + self.register_array_bytes

    @property
    def serialized_size_bytes(self) -> int:
        return HEADER_SIZE + 2 + self.register_array_bytes

    def to_bytes(self) -> bytes:
        buffer = write_header(TAG_HYPERLOGLOG)
        buffer.append(self._p)
        buffer.append(self._register_width)
        packed = PackedArray.from_values(self._register_width, self._registers)
        buffer.extend(packed.to_bytes())
        return bytes(buffer)

    @classmethod
    def from_bytes(cls, data: bytes) -> "HyperLogLog":
        offset = read_header(data, TAG_HYPERLOGLOG)
        if len(data) < offset + 2:
            raise SerializationError("truncated HyperLogLog parameters")
        p, width = data[offset], data[offset + 1]
        sketch = cls(p, width)
        payload = data[offset + 2 :]
        if len(payload) != sketch.register_array_bytes:
            raise SerializationError(
                f"register payload is {len(payload)} bytes, "
                f"expected {sketch.register_array_bytes}"
            )
        packed = PackedArray.from_bytes(width, sketch._m, payload)
        sketch._registers = packed.to_list()
        return sketch


class MartingaleHyperLogLog(HyperLogLog):
    """HyperLogLog with HIP (martingale) estimation (non-distributed use).

    The state-change probability of a register with value ``r`` is
    ``2**-r / m`` for ``r < 65 - p`` and 0 once saturated, maintained
    incrementally exactly like Algorithm 4.
    """

    __slots__ = ("_estimate", "_mu")

    supports_merge = False

    def __init__(self, p: int = 11, register_width: int = 6) -> None:
        super().__init__(p, register_width)
        self._estimate = 0.0
        self._mu = 1.0

    @property
    def mu(self) -> float:
        return self._mu

    def add_hash(self, hash_value: int) -> bool:
        index, k = hll_index_and_value(hash_value, self._p)
        old = self._registers[index]
        if k <= old:
            return False
        if self._mu > 0.0:
            self._estimate += 1.0 / self._mu
        k_max = 65 - self._p
        h_old = 2.0 ** (-old) if old < k_max else 0.0
        h_new = 2.0 ** (-k) if k < k_max else 0.0
        self._mu -= (h_old - h_new) / self._m
        self._registers[index] = k
        return True

    def add_hashes(self, hashes) -> "MartingaleHyperLogLog":
        """Bulk insert via the scalar loop (HIP estimation is order-dependent)."""
        from repro.backends.protocol import scalar_add_hashes

        return scalar_add_hashes(self, hashes)

    def estimate(self) -> float:
        return self._estimate

    def merge_inplace(self, other: DistinctCounter) -> "HyperLogLog":
        raise NotImplementedError(
            "martingale estimation is only valid for non-distributed streams"
        )

    def copy(self) -> "MartingaleHyperLogLog":
        clone = type(self)(self._p, self._register_width)
        clone._registers = list(self._registers)
        clone._estimate = self._estimate
        clone._mu = self._mu
        return clone

    @property
    def memory_bytes(self) -> int:
        return super().memory_bytes + 16  # estimate + mu accumulators

    @property
    def serialized_size_bytes(self) -> int:
        return super().serialized_size_bytes + 16

    def to_bytes(self) -> bytes:
        return super().to_bytes() + struct.pack("<dd", self._estimate, self._mu)

    @classmethod
    def from_bytes(cls, data: bytes) -> "MartingaleHyperLogLog":
        if len(data) < 16:
            raise SerializationError("truncated MartingaleHyperLogLog payload")
        base = HyperLogLog.from_bytes(data[:-16])
        sketch = cls(base.p, base.register_width)
        sketch._registers = list(base.registers)
        sketch._estimate, sketch._mu = struct.unpack("<dd", data[-16:])
        return sketch
