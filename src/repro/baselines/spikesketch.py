"""SpikeSketch behavioural model (Du et al., INFOCOM 2023; Table 2 row).

Substitution notice (DESIGN.md Sec. 3): the SpikeSketch reference
implementation is C++-only and, per the paper's footnotes, not usable for
space measurements ("empirical values are meaningless as the reference
implementation is not optimized"); the paper itself uses register-array
lower bounds. This model implements the documented externals the paper's
evaluation interacts with:

* geometrically distributed update values with success probability 3/4
  (base-4 levels), per Sec. 1.1;
* 64-bit buckets (8 bytes each; the default 128 buckets = 1024 bytes,
  Table 2's lower-bound size) holding a lossy encoding — modelled as 8
  sub-registers of 8 bits (5-bit base-4 maximum + 3 indicator bits);
* stepwise smoothing that reduces the update probability of an *empty*
  sketch to 36 % — reproduced by deterministic hash-based thinning with
  acceptance 0.64 and inverse-probability rescaling of the estimate. This
  yields the paper's low-n pathology: at ``n = 1`` the estimate is 0 with
  probability 0.36, i.e. 100 % error (Sec. 5.2 and the Figure 10 MVP
  blow-up below ``n ~ 10**4``).

The model is *not* bit-compatible with real SpikeSketch; like the paper,
we could not confirm the claimed MVP of 4.08 — our model lands higher,
which EXPERIMENTS.md records.
"""

from __future__ import annotations

import math

from repro.baselines.base import OBJECT_OVERHEAD_BYTES, DistinctCounter
from repro.core.register import update as update_register
from repro.hashing.splitmix64 import splitmix64_mix
from repro.storage.packed import PackedArray
from repro.storage.serialization import (
    SerializationError,
    TAG_SPIKESKETCH,
    read_header,
    write_header,
)
from scipy.optimize import brentq

#: Deterministic thinning acceptance (the documented smoothing factor).
ACCEPTANCE = 0.64

_SUB_REGISTERS_PER_BUCKET = 8
_D = 3  # indicator bits per sub-register
_Q = 5  # bits for the base-4 maximum level


class SpikeSketch(DistinctCounter):
    """Behavioural SpikeSketch model: base-4 levels, lossy 8-bit cells."""

    __slots__ = ("_buckets", "_m", "_registers")

    constant_time_insert = True
    supports_merge = True  # the design merges; the C++ reference did not

    def __init__(self, buckets: int = 128) -> None:
        if buckets < 2 or buckets & (buckets - 1):
            raise ValueError(f"bucket count must be a power of two >= 2, got {buckets}")
        self._buckets = buckets
        self._m = buckets * _SUB_REGISTERS_PER_BUCKET
        self._registers = [0] * self._m

    @property
    def buckets(self) -> int:
        return self._buckets

    @property
    def m(self) -> int:
        """Number of virtual sub-registers."""
        return self._m

    @property
    def max_level(self) -> int:
        """Largest storable base-4 level (5-bit field)."""
        return (1 << _Q) - 1

    def __repr__(self) -> str:
        return f"SpikeSketch(buckets={self._buckets})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SpikeSketch):
            return NotImplemented
        return self._buckets == other._buckets and self._registers == other._registers

    # -- update-value model ------------------------------------------------------

    def level_probability(self, k: int) -> float:
        """P(update value == k): ``3/4 * 4**-(k-1)``, tail-absorbing cap."""
        cap = self.max_level
        if k < 1 or k > cap:
            return 0.0
        if k == cap:
            return 4.0 ** -(cap - 1)
        return 0.75 * 4.0 ** -(k - 1)

    def tail_probability(self, u: int) -> float:
        """P(update value > u) = ``4**-u`` below the cap, else 0."""
        if u >= self.max_level:
            return 0.0
        return 4.0 ** -u

    def _classify(self, hash_value: int) -> tuple[int, int] | None:
        """Thinning + (sub-register index, base-4 level); None if dropped."""
        mixed = splitmix64_mix(hash_value)
        if (mixed >> 40) / float(1 << 24) >= ACCEPTANCE:
            return None
        index = mixed & (self._m - 1)
        remaining = mixed >> (self._m.bit_length() - 1)
        # Count leading zero base-4 digits of a 48-digit stream.
        level = 1
        cap = self.max_level
        for _ in range(48):
            digit = remaining & 3
            remaining >>= 2
            if digit != 0 or level >= cap:
                break
            level += 1
        return index, level

    # -- operations ------------------------------------------------------------------

    def add_hash(self, hash_value: int) -> bool:
        classified = self._classify(hash_value)
        if classified is None:
            return False
        index, level = classified
        old = self._registers[index]
        new = update_register(old, level, _D)
        if new == old:
            return False
        self._registers[index] = new
        return True

    def add_hashes(self, hashes) -> "SpikeSketch":
        """Bulk insert: vectorised thinning/classification, then replay the
        surviving unique (index, level) pairs (idempotent, so exact)."""
        from repro.backends import as_hash_array, spikesketch_pairs

        registers = self._registers
        for index, level in spikesketch_pairs(as_hash_array(hashes), self._buckets):
            registers[index] = update_register(registers[index], level, _D)
        return self

    def estimate(self) -> float:
        """ML estimate over the base-4 register model, rescaled by 1/0.64.

        The base-4 probabilities are not powers of two, so Algorithm 8 does
        not apply; the derivative of the log-likelihood is solved with a
        bracketing root finder instead.
        """
        m = self._m
        alpha = 0.0
        beta: dict[int, int] = {}
        for r in self._registers:
            u = r >> _D
            alpha += self.tail_probability(u)
            if u >= 1:
                beta[u] = beta.get(u, 0) + 1
                for k in range(max(1, u - _D), u):
                    if (r >> (_D - u + k)) & 1:
                        beta[k] = beta.get(k, 0) + 1
                    else:
                        alpha += self.level_probability(k)
        if not beta:
            return 0.0
        terms = [(self.level_probability(k), count) for k, count in beta.items()]

        def derivative(n: float) -> float:
            total = -alpha / m
            for rho, count in terms:
                total += count * (rho / m) / math.expm1(n * rho / m)
            return total

        low, high = 1e-9, 4.0 * m
        while derivative(high) > 0.0 and high < 1e30:
            high *= 4.0
        root = brentq(derivative, low, high, xtol=1e-9, rtol=1e-12)
        return root / ACCEPTANCE

    def merge_inplace(self, other: DistinctCounter) -> "SpikeSketch":
        if not isinstance(other, SpikeSketch) or other._buckets != self._buckets:
            raise ValueError(f"cannot merge {self!r} with {other!r}")
        from repro.core.register import merge as merge_register

        registers = self._registers
        for i, r2 in enumerate(other._registers):
            if r2:
                registers[i] = merge_register(registers[i], r2, _D)
        return self

    def copy(self) -> "SpikeSketch":
        clone = SpikeSketch(self._buckets)
        clone._registers = list(self._registers)
        return clone

    # -- sizes and serialization -----------------------------------------------------------

    @property
    def memory_bytes(self) -> int:
        return OBJECT_OVERHEAD_BYTES + self._buckets * 8

    def to_bytes(self) -> bytes:
        buffer = write_header(TAG_SPIKESKETCH)
        buffer.extend(self._buckets.to_bytes(4, "little"))
        packed = PackedArray.from_values(_Q + _D, self._registers)
        buffer.extend(packed.to_bytes())
        return bytes(buffer)

    @classmethod
    def from_bytes(cls, data: bytes) -> "SpikeSketch":
        offset = read_header(data, TAG_SPIKESKETCH)
        if len(data) < offset + 4:
            raise SerializationError("truncated SpikeSketch parameters")
        buckets = int.from_bytes(data[offset : offset + 4], "little")
        sketch = cls(buckets)
        payload = data[offset + 4 :]
        expected = sketch._m  # 8 bits per register
        if len(payload) != expected:
            raise SerializationError(
                f"register payload is {len(payload)} bytes, expected {expected}"
            )
        sketch._registers = PackedArray.from_bytes(8, sketch._m, payload).to_list()
        return sketch
