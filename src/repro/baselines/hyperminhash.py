"""HyperMinHash as an ExaLogLog special case (paper Sec. 2.5).

HyperMinHash [Yu & Weber 2022] stores, per bucket, the maximum of update
values drawn from exactly the distribution Eq. (8) — i.e. it "corresponds
to ELL(t, 0), whose registers only store the maxima of update values"
(Sec. 2.5; HyperMinHash orders register and value bits differently, which
does not affect any statistic). Its purpose is MinHash-style set
similarity in log-log space; the containment/Jaccard estimators from
:mod:`repro.setops` apply directly.

This class exposes the special case by name; everything (insert, ML
estimation via Alg. 3/8, merge, reduction) is inherited.
"""

from __future__ import annotations

from repro.core.exaloglog import ExaLogLog


class HyperMinHash(ExaLogLog):
    """HyperMinHash: ELL(t, 0) — max-only registers of ``6 + t`` bits.

    ``t`` controls the sub-bucket resolution (HyperMinHash's "r" bits play
    the role of ELL's low ``t`` hash bits).

    >>> sketch = HyperMinHash(t=2, p=10)
    >>> sketch.params.register_bits
    8
    """

    def __init__(self, t: int = 2, p: int = 10) -> None:
        super().__init__(t=t, d=0, p=p)

    @classmethod
    def from_exaloglog(cls, sketch: ExaLogLog) -> "HyperMinHash":
        """Adopt any ELL(t, 0) state (e.g. obtained by reducing d to 0)."""
        if sketch.d != 0:
            raise ValueError(f"not an ELL(t, 0) state: {sketch.params}")
        result = cls(sketch.t, sketch.p)
        result._registers = list(sketch.registers)
        return result
