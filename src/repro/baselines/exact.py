"""Exact distinct counter (ground truth for examples and tests).

Exact counting takes linear space (paper Sec. 1, citing Alon-Matias-
Szegedy); this hash-set counter exists to make that cost visible next to
the sketches and to provide ground truth in the examples.
"""

from __future__ import annotations

from repro.baselines.base import OBJECT_OVERHEAD_BYTES, DistinctCounter
from repro.storage.serialization import (
    SerializationError,
    read_uvarint,
    write_uvarint,
)


class ExactCounter(DistinctCounter):
    """Stores every distinct 64-bit hash; exact but linear-space."""

    __slots__ = ("_hashes",)

    constant_time_insert = True

    def __init__(self) -> None:
        self._hashes: set[int] = set()

    def add_hash(self, hash_value: int) -> bool:
        # Canonicalize to the unsigned 64-bit domain so scalar and bulk
        # ingestion agree (and delta-varint serialization stays valid).
        hash_value &= 0xFFFFFFFFFFFFFFFF
        before = len(self._hashes)
        self._hashes.add(hash_value)
        return len(self._hashes) != before

    def add_hashes(self, hashes) -> "ExactCounter":
        """Bulk insert: one set update over the coerced hash array."""
        from repro.backends import as_hash_array

        self._hashes.update(as_hash_array(hashes).tolist())
        return self

    def estimate(self) -> float:
        return float(len(self._hashes))

    def merge_inplace(self, other: DistinctCounter) -> "ExactCounter":
        if not isinstance(other, ExactCounter):
            raise TypeError("can only merge ExactCounter with ExactCounter")
        self._hashes |= other._hashes
        return self

    def copy(self) -> "ExactCounter":
        clone = ExactCounter()
        clone._hashes = set(self._hashes)
        return clone

    @property
    def memory_bytes(self) -> int:
        # 8 payload bytes per hash; set overhead is real but Python-specific,
        # so the model charges payload only (conservative for the baseline).
        return OBJECT_OVERHEAD_BYTES + 8 * len(self._hashes)

    def to_bytes(self) -> bytes:
        buffer = bytearray()
        write_uvarint(buffer, len(self._hashes))
        previous = 0
        for value in sorted(self._hashes):
            write_uvarint(buffer, value - previous)
            previous = value
        return bytes(buffer)

    @classmethod
    def from_bytes(cls, data: bytes) -> "ExactCounter":
        counter = cls()
        count, offset = read_uvarint(data, 0)
        value = 0
        for _ in range(count):
            delta, offset = read_uvarint(data, offset)
            value += delta
            counter._hashes.add(value)
        if offset != len(data):
            raise SerializationError("trailing bytes after ExactCounter payload")
        return counter
