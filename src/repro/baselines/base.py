"""Common interface for every distinct counter in the library.

Table 2 and Figures 10-11 compare ten algorithms on identical operations
(insert, estimate, serialize, merge). :class:`DistinctCounter` pins down
that operation set plus the two size accounts the paper reports:

``serialized_size_bytes``
    honest byte count of :meth:`to_bytes` output.
``memory_bytes``
    modelled in-memory footprint (payload + declared auxiliary fields +
    :data:`OBJECT_OVERHEAD_BYTES`); see DESIGN.md Sec. 3 for why Java heap
    sizes are modelled rather than measured.
"""

from __future__ import annotations

import abc
from typing import Any, Iterable

from repro.hashing import hash64

#: Fixed overhead standing in for an object header + array header, applied
#: uniformly to every sketch when modelling in-memory size.
OBJECT_OVERHEAD_BYTES = 16


class DistinctCounter(abc.ABC):
    """Abstract base class for approximate distinct counters."""

    #: Whether the insert operation runs in constant time regardless of the
    #: sketch size (the last column of Table 2).
    constant_time_insert: bool = True

    #: Whether the structure supports merging partial results.
    supports_merge: bool = True

    def add(self, item: Any, seed: int = 0) -> "DistinctCounter":
        """Insert an element (hashed with Murmur3); returns ``self``."""
        self.add_hash(hash64(item, seed))
        return self

    def add_all(self, items: Iterable[Any], seed: int = 0) -> "DistinctCounter":
        """Insert every element of an iterable; returns ``self``.

        Routed through the bulk path: NumPy integer/float arrays are
        hashed vectorised, everything else element-wise, and the hashes
        are ingested through :meth:`add_hashes`.
        """
        return self.add_batch(items, seed)

    def add_batch(self, items: Iterable[Any], seed: int = 0) -> "DistinctCounter":
        """Hash a batch of items (vectorised when possible) and ingest it."""
        from repro.hashing.batch import hash_items

        return self.add_hashes(hash_items(items, seed))

    def add_hashes(self, hashes) -> "DistinctCounter":
        """Insert a batch of 64-bit hashes (ndarray or iterable of ints).

        The resulting state is bit-identical to the sequential
        :meth:`add_hash` loop (the :class:`repro.backends.BulkBackend`
        contract). This default *is* the scalar loop; sketches with a
        vectorised backend override it.
        """
        from repro.backends.protocol import scalar_add_hashes

        return scalar_add_hashes(self, hashes)

    @abc.abstractmethod
    def add_hash(self, hash_value: int) -> bool:
        """Insert a 64-bit hash; returns True when the state changed."""

    @abc.abstractmethod
    def estimate(self) -> float:
        """Distinct-count estimate."""

    @abc.abstractmethod
    def merge_inplace(self, other: "DistinctCounter") -> "DistinctCounter":
        """Merge another counter of identical configuration into this one."""

    @abc.abstractmethod
    def to_bytes(self) -> bytes:
        """Serialize the counter."""

    @property
    @abc.abstractmethod
    def memory_bytes(self) -> int:
        """Modelled in-memory footprint (see module docstring)."""

    @property
    def serialized_size_bytes(self) -> int:
        """Size of :meth:`to_bytes` output (default: measure it)."""
        return len(self.to_bytes())

    def merge(self, other: "DistinctCounter") -> "DistinctCounter":
        """Out-of-place merge."""
        result = self.copy()
        result.merge_inplace(other)
        return result

    @abc.abstractmethod
    def copy(self) -> "DistinctCounter":
        """Deep copy."""
