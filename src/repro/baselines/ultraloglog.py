"""UltraLogLog and ExtendedHyperLogLog as ExaLogLog special cases.

Sec. 2.5: EHLL is ELL(0, 1) (7-bit registers, MVP 5.19 per Eq. (3); the
EHLL paper's own estimator achieves 5.43) and ULL is ELL(0, 2) (exactly
one byte per register, MVP 4.63 — the hash4j baseline of Table 2). Both
are exposed as thin classes so benchmarks and users can talk about them by
name, while all machinery (insert, ML estimation, merge, reduction,
serialization) is inherited from the generalized implementation.
"""

from __future__ import annotations

from repro.core.exaloglog import ExaLogLog
from repro.core.martingale import MartingaleExaLogLog


class UltraLogLog(ExaLogLog):
    """UltraLogLog [Ertl 2024]: ELL(0, 2) with 8-bit registers.

    >>> sketch = UltraLogLog(p=10)
    >>> sketch.params.register_bits
    8
    """

    def __init__(self, p: int = 10) -> None:
        super().__init__(t=0, d=2, p=p)

    @classmethod
    def from_exaloglog(cls, sketch: ExaLogLog) -> "UltraLogLog":
        """Adopt an ELL(0, 2) state (e.g. obtained by reduction)."""
        if (sketch.t, sketch.d) != (0, 2):
            raise ValueError(f"not an ELL(0, 2) state: {sketch.params}")
        result = cls(sketch.p)
        result._registers = list(sketch.registers)
        return result


class MartingaleUltraLogLog(MartingaleExaLogLog):
    """UltraLogLog with martingale (HIP) estimation."""

    def __init__(self, p: int = 10) -> None:
        super().__init__(t=0, d=2, p=p)


class ExtendedHyperLogLog(ExaLogLog):
    """ExtendedHyperLogLog [Ohayon 2021]: ELL(0, 1) with 7-bit registers."""

    def __init__(self, p: int = 10) -> None:
        super().__init__(t=0, d=1, p=p)
