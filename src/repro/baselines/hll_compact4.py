"""4-bit HyperLogLog in the Apache DataSketches style (Table 2 row "HLL4").

The most frequent register values cluster in a narrow band of width < 16,
so DataSketches stores 4-bit values relative to a global base offset and
keeps out-of-range values in an exception map. The price, which Table 2's
last column records, is a non-constant-time insert: whenever the minimal
register value rises above the base, every nibble must be rewritten.

This implementation keeps the same value semantics as
:class:`~repro.baselines.hyperloglog.HyperLogLog` (identical estimates) and
reproduces the variable, smaller footprint (~5.6 in-memory MVP at p=11).
"""

from __future__ import annotations

from repro.baselines.base import OBJECT_OVERHEAD_BYTES, DistinctCounter
from repro.baselines.hyperloglog import HyperLogLog, hll_index_and_value
from repro.core.mlestimation import compute_coefficients, estimate_from_coefficients
from repro.core.params import make_params
from repro.storage.packed import PackedArray
from repro.storage.serialization import (
    SerializationError,
    TAG_HLL_COMPACT4,
    read_header,
    read_uvarint,
    write_header,
    write_uvarint,
)

_NIBBLE_MAX = 15
#: Nibble value marking "look in the exception map".
_EXCEPTION_MARK = 15


class HllCompact4(DistinctCounter):
    """HyperLogLog with 4-bit offset-coded registers and an exception map."""

    __slots__ = ("_base", "_exceptions", "_m", "_nibbles", "_p", "_zero_nibbles")

    constant_time_insert = False

    def __init__(self, p: int = 11) -> None:
        if not 2 <= p <= 26:
            raise ValueError(f"p must be in [2, 26], got {p}")
        self._p = p
        self._m = 1 << p
        self._base = 0
        self._nibbles = [0] * self._m
        self._exceptions: dict[int, int] = {}
        # Number of nibbles equal to 0 (registers sitting exactly at the
        # base). The base can only rise once this hits zero, so tracking it
        # incrementally keeps inserts O(1) amortized.
        self._zero_nibbles = self._m

    @property
    def p(self) -> int:
        return self._p

    @property
    def m(self) -> int:
        return self._m

    @property
    def base(self) -> int:
        """The global offset all in-range nibbles are relative to."""
        return self._base

    @property
    def exception_count(self) -> int:
        return len(self._exceptions)

    def __repr__(self) -> str:
        return (
            f"HllCompact4(p={self._p}, base={self._base}, "
            f"exceptions={len(self._exceptions)})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HllCompact4):
            return NotImplemented
        return self.register_values() == other.register_values()

    # -- value access ---------------------------------------------------------

    def register_value(self, index: int) -> int:
        """The full (un-offset) register value at ``index``.

        ``base + nibble`` with the convention that nibble 15 redirects to
        the exception map. While the base is 0 a zero nibble means an
        untouched register; once the base has risen no register can be 0.
        """
        nibble = self._nibbles[index]
        if nibble == _EXCEPTION_MARK:
            return self._exceptions.get(index, self._base + _EXCEPTION_MARK)
        return self._base + nibble

    def register_values(self) -> list[int]:
        """All full register values (what a plain HLL would store)."""
        return [self.register_value(i) for i in range(self._m)]

    # -- operations --------------------------------------------------------------

    def add_hash(self, hash_value: int) -> bool:
        index, k = hll_index_and_value(hash_value, self._p)
        current = self.register_value(index)
        if k <= current:
            return False
        self._store(index, k)
        self._maybe_raise_base()
        return True

    def _store(self, index: int, value: int) -> None:
        relative = value - self._base
        if self._nibbles[index] == 0:
            self._zero_nibbles -= 1
        if 0 < relative < _EXCEPTION_MARK:
            self._nibbles[index] = relative
            self._exceptions.pop(index, None)
        else:
            self._nibbles[index] = _EXCEPTION_MARK
            self._exceptions[index] = value

    def _maybe_raise_base(self) -> None:
        """Raise the base once no register sits at it anymore (O(m) then)."""
        if self._zero_nibbles > 0:
            return
        minimum = min(self.register_value(i) for i in range(self._m))
        if minimum > self._base:
            self._rebuild(minimum)

    def _rebuild(self, new_base: int) -> None:
        """O(m) re-encode of every nibble against a raised base."""
        values = self.register_values()
        self._base = new_base
        self._exceptions.clear()
        for i, value in enumerate(values):
            relative = value - new_base  # >= 0 because new_base is the minimum
            if relative < _EXCEPTION_MARK:
                self._nibbles[i] = relative
            else:
                self._nibbles[i] = _EXCEPTION_MARK
                self._exceptions[i] = value
        self._zero_nibbles = sum(1 for nibble in self._nibbles if nibble == 0)

    def estimate(self) -> float:
        params = make_params(0, 0, self._p)
        coefficients = compute_coefficients(self.register_values(), params)
        return estimate_from_coefficients(coefficients, params, True)

    def merge_inplace(self, other: DistinctCounter) -> "HllCompact4":
        if isinstance(other, HllCompact4):
            values = other.register_values()
        elif isinstance(other, HyperLogLog):
            values = list(other.registers)
        else:
            raise TypeError(f"cannot merge HllCompact4 with {type(other).__name__}")
        if len(values) != self._m:
            raise ValueError("precision mismatch")
        for i, value in enumerate(values):
            if value > self.register_value(i):
                self._store(i, value)
        self._maybe_raise_base()
        return self

    def copy(self) -> "HllCompact4":
        clone = HllCompact4(self._p)
        clone._base = self._base
        clone._nibbles = list(self._nibbles)
        clone._exceptions = dict(self._exceptions)
        clone._zero_nibbles = self._zero_nibbles
        return clone

    # -- sizes and serialization ------------------------------------------------------

    @property
    def memory_bytes(self) -> int:
        # Nibble array + exception map modelled at 3 bytes per entry
        # (16-bit index + 8-bit value, the DataSketches coupon layout).
        return OBJECT_OVERHEAD_BYTES + self._m // 2 + 3 * len(self._exceptions)

    def to_bytes(self) -> bytes:
        buffer = write_header(TAG_HLL_COMPACT4)
        buffer.append(self._p)
        buffer.append(self._base)
        packed = PackedArray.from_values(4, self._nibbles)
        buffer.extend(packed.to_bytes())
        write_uvarint(buffer, len(self._exceptions))
        for index in sorted(self._exceptions):
            write_uvarint(buffer, index)
            write_uvarint(buffer, self._exceptions[index])
        return bytes(buffer)

    @classmethod
    def from_bytes(cls, data: bytes) -> "HllCompact4":
        offset = read_header(data, TAG_HLL_COMPACT4)
        if len(data) < offset + 2:
            raise SerializationError("truncated HllCompact4 parameters")
        p, base = data[offset], data[offset + 1]
        sketch = cls(p)
        sketch._base = base
        nibble_bytes = sketch._m // 2
        payload = data[offset + 2 : offset + 2 + nibble_bytes]
        if len(payload) != nibble_bytes:
            raise SerializationError("truncated HllCompact4 nibble array")
        sketch._nibbles = PackedArray.from_bytes(4, sketch._m, payload).to_list()
        sketch._zero_nibbles = sum(1 for nibble in sketch._nibbles if nibble == 0)
        position = offset + 2 + nibble_bytes
        count, position = read_uvarint(data, position)
        for _ in range(count):
            index, position = read_uvarint(data, position)
            value, position = read_uvarint(data, position)
            sketch._exceptions[index] = value
        return sketch
