"""PCSA / FM-sketch (Flajolet & Martin 1985; paper Sec. 1.1 and 2.5).

Probabilistic counting with stochastic averaging keeps, per stochastic
bucket, a *bitmap* with one bit per geometric level — unlike HLL it
remembers every level ever hit, not just the maximum. Sec. 2.5 notes that
PCSA stores exactly the same information as ELL(0, 64); its uncompressed
MVP is poor but its entropy is low, which is why compressed variants (CPC)
approach the 1.98 bound.

Two estimators:

* :meth:`PCSA.estimate_fm` — the original Flajolet-Martin estimator based
  on the mean position of the lowest unset bit (``n ~ m 2**R / 0.77351``).
* :meth:`PCSA.estimate` — ML estimation, implementing the paper's Sec. 6
  suggestion that the reduced ML equation should work for PCSA too: the
  bitmap likelihood has exactly the Eq. (15) shape, so the shared Newton
  solver applies unchanged.
"""

from __future__ import annotations

import math

from repro.baselines.base import OBJECT_OVERHEAD_BYTES, DistinctCounter
from repro.estimation.newton import solve_ml_equation
from repro.storage.serialization import (
    SerializationError,
    TAG_PCSA,
    read_header,
    write_header,
)

#: Flajolet-Martin's magic constant (the expectation correction phi).
_FM_PHI = 0.77351


class PCSA(DistinctCounter):
    """FM-sketch: ``m = 2**p`` bitmaps over geometric levels.

    Level ``k`` (0-based) of bucket ``i`` is set when an element hashed to
    bucket ``i`` with ``nlz(remaining bits) == k``; level probabilities are
    ``2**-(k+1)`` with the final level absorbing the tail.
    """

    __slots__ = ("_bitmaps", "_levels", "_m", "_p")

    def __init__(self, p: int = 10) -> None:
        if not 2 <= p <= 26:
            raise ValueError(f"p must be in [2, 26], got {p}")
        self._p = p
        self._m = 1 << p
        # nlz of the remaining 64-p bits lies in [0, 64-p]; level 64-p
        # (all remaining bits zero) is folded into the last level.
        self._levels = 64 - p
        self._bitmaps = [0] * self._m

    @property
    def p(self) -> int:
        return self._p

    @property
    def m(self) -> int:
        return self._m

    @property
    def levels(self) -> int:
        """Number of levels per bitmap."""
        return self._levels

    @property
    def bitmaps(self) -> tuple[int, ...]:
        return tuple(self._bitmaps)

    @property
    def is_empty(self) -> bool:
        return not any(self._bitmaps)

    def __repr__(self) -> str:
        return f"PCSA(p={self._p}, levels={self._levels})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PCSA):
            return NotImplemented
        return self._p == other._p and self._bitmaps == other._bitmaps

    # -- operations ------------------------------------------------------------

    def add_hash(self, hash_value: int) -> bool:
        index = hash_value >> (64 - self._p)
        masked = hash_value & ((1 << (64 - self._p)) - 1)
        level = min(64 - self._p - masked.bit_length(), self._levels - 1)
        bit = 1 << level
        if self._bitmaps[index] & bit:
            return False
        self._bitmaps[index] |= bit
        return True

    def add_hashes(self, hashes) -> "PCSA":
        """Vectorised bulk insert: fold the batch, then element-wise OR."""
        import numpy as np

        from repro.backends import as_hash_array, pcsa_bitmaps

        hashes = as_hash_array(hashes)
        if len(hashes):
            batch = pcsa_bitmaps(hashes, self._p)
            existing = np.asarray(self._bitmaps, dtype=np.int64)
            self._bitmaps = (existing | batch).tolist()
        return self

    def level_probability(self, level: int) -> float:
        """Per-element probability of hitting ``level`` in a given bucket."""
        if not 0 <= level < self._levels:
            raise ValueError(f"level {level} out of range")
        if level == self._levels - 1:
            return 2.0 ** -(self._levels - 1)  # tail-absorbing last level
        return 2.0 ** -(level + 1)

    # -- estimation ---------------------------------------------------------------

    def estimate(self) -> float:
        return self.estimate_ml()

    def _ml_coefficients(self) -> tuple[float, dict[int, int]]:
        """Canonical (alpha, beta) of the bitmap likelihood.

        Set bit at level k:   contributes ln(1 - exp(-n rho_k / m))
        Unset bit at level k: contributes -n rho_k / m
        with rho_k a power of two, so beta is keyed by the exponent.
        Counts are accumulated per level first and alpha summed in
        ascending-exponent order — the form the vectorised
        :meth:`estimate_ml_many` reproduces bit for bit.
        """
        last = self._levels - 1
        set_counts = [0] * self._levels
        for bitmap in self._bitmaps:
            for level in range(self._levels):
                set_counts[level] += (bitmap >> level) & 1
        alpha = 0.0
        beta: dict[int, int] = {}
        for level in range(self._levels):
            exponent = level + 1 if level < last else last
            beta[exponent] = beta.get(exponent, 0) + set_counts[level]
            alpha += (self._m - set_counts[level]) * 2.0 ** -exponent
        return alpha, {e: c for e, c in beta.items() if c}

    def estimate_ml(self) -> float:
        """ML estimation via the shared Eq. (15)-shaped likelihood.

        Implements the paper's Sec. 6 suggestion: the bitmap likelihood
        has exactly the Eq. (15) shape, so the shared Newton solver
        applies unchanged. For ``m >= 256`` this routes through the
        vectorised batch solver (bit-identical).
        """
        if self._m >= 256:
            return float(self.estimate_ml_many([self])[0])
        alpha, beta = self._ml_coefficients()
        return self._m * solve_ml_equation(alpha, beta).nu

    @classmethod
    def estimate_ml_many(cls, sketches):
        """Vectorised ML estimates for many same-``p`` PCSA sketches.

        Per-level set-bit counts vectorise over a stacked bitmap matrix;
        all sketches then solve in one simultaneous Newton iteration on
        the shared :func:`repro.estimation.batch.solve_ml_equations`.
        """
        import numpy as np

        from repro.estimation.batch import EXPONENT_AXIS, solve_ml_equations

        if not sketches:
            return np.zeros(0)
        m = sketches[0].m
        levels = sketches[0].levels
        if any(sketch.m != m for sketch in sketches):
            raise ValueError("sketches must share the same precision p")
        matrix = np.array([sketch._bitmaps for sketch in sketches], dtype=np.int64)
        k = len(sketches)
        last = levels - 1
        set_counts = np.empty((k, levels), dtype=np.int64)
        for level in range(levels):
            set_counts[:, level] = ((matrix >> np.int64(level)) & np.int64(1)).sum(axis=1)
        alpha = np.zeros(k)
        beta = np.zeros((k, EXPONENT_AXIS), dtype=np.int64)
        for level in range(levels):
            exponent = level + 1 if level < last else last
            beta[:, exponent] += set_counts[:, level]
            alpha += (m - set_counts[:, level]) * math.ldexp(1.0, -exponent)
        return m * solve_ml_equations(alpha, beta).nu

    def estimate_fm(self) -> float:
        """The original Flajolet-Martin estimator ``m 2**mean(R) / 0.77351``."""
        total_r = 0
        for bitmap in self._bitmaps:
            r = 0
            while (bitmap >> r) & 1:
                r += 1
            total_r += r
        mean_r = total_r / self._m
        return self._m * (2.0 ** mean_r) / _FM_PHI

    @classmethod
    def estimate_fm_many(cls, sketches):
        """Vectorised Flajolet-Martin estimates (bit-identical to scalar).

        ``R`` per bucket is the number of trailing ones of the bitmap —
        ``ntz(~bitmap)`` — which vectorises over the stacked matrix; the
        integer totals make the float arithmetic identical per sketch.
        """
        import numpy as np

        from repro.backends.bitops import ntz64_array

        if not sketches:
            return np.zeros(0)
        m = sketches[0].m
        if any(sketch.m != m for sketch in sketches):
            raise ValueError("sketches must share the same precision p")
        matrix = np.array([sketch._bitmaps for sketch in sketches], dtype=np.uint64)
        lowest_unset = ntz64_array(~matrix)
        totals = lowest_unset.sum(axis=1)
        estimates = np.empty(len(sketches))
        for i, total_r in enumerate(totals.tolist()):
            mean_r = total_r / m
            estimates[i] = m * (2.0 ** mean_r) / _FM_PHI
        return estimates

    # -- merge -----------------------------------------------------------------------

    def merge_inplace(self, other: DistinctCounter) -> "PCSA":
        if not isinstance(other, PCSA) or other._p != self._p:
            raise ValueError(f"cannot merge {self!r} with {other!r}")
        bitmaps = self._bitmaps
        for i, bitmap in enumerate(other._bitmaps):
            bitmaps[i] |= bitmap
        return self

    def copy(self) -> "PCSA":
        clone = PCSA(self._p)
        clone._bitmaps = list(self._bitmaps)
        return clone

    # -- sizes and serialization --------------------------------------------------------

    @property
    def bitmap_bytes(self) -> int:
        """Exact packed size of the level bitmaps."""
        return (self._levels * self._m + 7) // 8

    def windowed_memory_bytes(self, window: int = 8) -> int:
        """Size of a windowed working representation (the CPC memory model).

        CPC-style implementations keep, per bucket, only a ``window``-bit
        slice of the level bitmap anchored at a global offset; set bits
        above the window and unset bits below it are exceptions (a few
        bytes each). This method picks the offset minimising the exception
        count and returns ``window`` bits per bucket + 3 bytes per
        exception — the structural reason CPC's in-memory state is about
        twice its entropy-coded serialization (paper Table 2).
        """
        best_exceptions = None
        for offset in range(0, max(1, self._levels - window + 1)):
            exceptions = 0
            low_mask = (1 << offset) - 1
            for bitmap in self._bitmaps:
                exceptions += bin(bitmap >> (offset + window)).count("1")
                exceptions += bin((~bitmap) & low_mask).count("1")
            if best_exceptions is None or exceptions < best_exceptions:
                best_exceptions = exceptions
        assert best_exceptions is not None
        return (window * self._m + 7) // 8 + 3 * best_exceptions

    @property
    def memory_bytes(self) -> int:
        return OBJECT_OVERHEAD_BYTES + self.bitmap_bytes

    def to_bytes(self) -> bytes:
        from repro.storage.packed import PackedArray

        buffer = write_header(TAG_PCSA)
        buffer.append(self._p)
        packed = PackedArray.from_values(self._levels, self._bitmaps)
        buffer.extend(packed.to_bytes())
        return bytes(buffer)

    @classmethod
    def from_bytes(cls, data: bytes) -> "PCSA":
        from repro.storage.packed import PackedArray

        offset = read_header(data, TAG_PCSA)
        if len(data) < offset + 1:
            raise SerializationError("truncated PCSA parameters")
        sketch = cls(data[offset])
        payload = data[offset + 1 :]
        if len(payload) != sketch.bitmap_bytes:
            raise SerializationError(
                f"bitmap payload is {len(payload)} bytes, expected {sketch.bitmap_bytes}"
            )
        sketch._bitmaps = PackedArray.from_bytes(
            sketch._levels, sketch._m, payload
        ).to_list()
        return sketch
