"""Every baseline sketch the paper compares ExaLogLog against (Table 2)."""

from repro.baselines.base import OBJECT_OVERHEAD_BYTES, DistinctCounter
from repro.baselines.cpc import CpcSketch
from repro.baselines.exact import ExactCounter
from repro.baselines.hll_compact4 import HllCompact4
from repro.baselines.hyperloglog import HyperLogLog, MartingaleHyperLogLog
from repro.baselines.hyperlogloglog import HyperLogLogLog
from repro.baselines.hyperminhash import HyperMinHash
from repro.baselines.pcsa import PCSA
from repro.baselines.spikesketch import SpikeSketch
from repro.baselines.ultraloglog import (
    ExtendedHyperLogLog,
    MartingaleUltraLogLog,
    UltraLogLog,
)

__all__ = [
    "CpcSketch",
    "DistinctCounter",
    "ExactCounter",
    "ExtendedHyperLogLog",
    "HllCompact4",
    "HyperLogLog",
    "HyperLogLogLog",
    "HyperMinHash",
    "MartingaleHyperLogLog",
    "MartingaleUltraLogLog",
    "OBJECT_OVERHEAD_BYTES",
    "PCSA",
    "SpikeSketch",
    "UltraLogLog",
]
