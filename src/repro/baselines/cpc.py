"""CPC-style compressed probabilistic counting (Table 2 row "CPC").

Substitution notice (DESIGN.md Sec. 3): Lang's CPC sketch, as shipped in
Apache DataSketches, is a large system (window offsets, pair tables,
custom codes). Per the paper's own Sec. 2.5, CPC stores the same
information as PCSA / ELL(0, 64); what makes it special is that its
*serialized* form is entropy coded while its in-memory form stays an
uncompressed, more-than-twice-larger working state, and serialization is
expensive. This class reproduces exactly those properties:

* in-memory state: a full :class:`~repro.baselines.pcsa.PCSA` bitmap array;
* ``to_bytes``: range-codes the bitmaps under the Poisson per-bit model
  (probabilities derived from a stored ML estimate hint), landing close to
  the Shannon bound — serialized MVP ~2.3-2.5 like the paper reports;
* serialization is measurably slower than every other sketch (Figure 11's
  "more than an order of magnitude" observation).
"""

from __future__ import annotations

from repro.baselines.base import OBJECT_OVERHEAD_BYTES, DistinctCounter
from repro.baselines.pcsa import PCSA
from repro.compression.codec import compress_bitmaps, decompress_bitmaps
from repro.storage.serialization import (
    HEADER_SIZE,
    SerializationError,
    TAG_CPC,
    read_header,
    read_uvarint,
    write_header,
    write_uvarint,
)


class CpcSketch(DistinctCounter):
    """PCSA state with entropy-coded serialization (CPC surrogate)."""

    __slots__ = ("_pcsa",)

    constant_time_insert = False  # bulked/compressed designs; Table 2 column

    def __init__(self, p: int = 10) -> None:
        self._pcsa = PCSA(p)

    @property
    def p(self) -> int:
        return self._pcsa.p

    @property
    def m(self) -> int:
        return self._pcsa.m

    @property
    def pcsa(self) -> PCSA:
        """The underlying uncompressed working state."""
        return self._pcsa

    def __repr__(self) -> str:
        return f"CpcSketch(p={self.p})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CpcSketch):
            return NotImplemented
        return self._pcsa == other._pcsa

    def add_hash(self, hash_value: int) -> bool:
        return self._pcsa.add_hash(hash_value)

    def add_hashes(self, hashes) -> "CpcSketch":
        """Bulk insert, delegated to the underlying PCSA working state."""
        self._pcsa.add_hashes(hashes)
        return self

    def estimate(self) -> float:
        return self._pcsa.estimate_ml()

    def merge_inplace(self, other: DistinctCounter) -> "CpcSketch":
        if not isinstance(other, CpcSketch):
            raise TypeError(f"cannot merge CpcSketch with {type(other).__name__}")
        self._pcsa.merge_inplace(other._pcsa)
        return self

    def copy(self) -> "CpcSketch":
        clone = CpcSketch(self.p)
        clone._pcsa = self._pcsa.copy()
        return clone

    @property
    def memory_bytes(self) -> int:
        # CPC's working state is a windowed bitmap slice plus surprise
        # lists — uncompressed and random-access, about twice the
        # entropy-coded serialized size (Table 2: 1416 vs 656 at p=10).
        # A 10-bit window reproduces the DataSketches footprint.
        return OBJECT_OVERHEAD_BYTES + self._pcsa.windowed_memory_bytes(window=10)

    def to_bytes(self) -> bytes:
        """Entropy-coded serialization (the expensive step, cf. Figure 11)."""
        n_hint = self._pcsa.estimate_ml()
        level_probs = [
            self._pcsa.level_probability(level) for level in range(self._pcsa.levels)
        ]
        compressed = compress_bitmaps(self._pcsa.bitmaps, level_probs, n_hint)
        buffer = write_header(TAG_CPC)
        buffer.append(self.p)
        write_uvarint(buffer, len(compressed))
        buffer.extend(compressed)
        return bytes(buffer)

    @classmethod
    def from_bytes(cls, data: bytes) -> "CpcSketch":
        offset = read_header(data, TAG_CPC)
        if len(data) < offset + 1:
            raise SerializationError("truncated CpcSketch parameters")
        p = data[offset]
        length, position = read_uvarint(data, offset + 1)
        compressed = bytes(data[position : position + length])
        if len(compressed) != length:
            raise SerializationError("truncated CpcSketch payload")
        sketch = cls(p)
        level_probs = [
            sketch._pcsa.level_probability(level) for level in range(sketch._pcsa.levels)
        ]
        bitmaps = decompress_bitmaps(compressed, sketch.m, level_probs)
        sketch._pcsa._bitmaps = bitmaps
        return sketch
