"""HyperLogLogLog (Karppa & Pagh, KDD 2022; Table 2 row "HLLL").

HLLL compresses HyperLogLog to 3-bit registers storing values relative to
a global offset, with out-of-range registers spilled to a sparse exception
list. The offset is chosen to minimise the exception count (the paper's
size-minimising rebalancing); rebalancing rewrites the whole register
array, which is why insertion is not constant time (Sec. 1.1: "on average
more than an order of magnitude slower" than HLL).

Faithfulness notes:

* Values are HLL values; estimates must match a plain HLL on the same
  stream (asserted by tests).
* Estimation deliberately uses the *original* HLL estimator (raw +
  linear counting), because Sec. 5.2 attributes HLLL's error spike around
  ``n ~ 5 * 10**3`` in Figure 10 to that estimator. An ML estimate is also
  provided for comparison.
"""

from __future__ import annotations

from repro.baselines.base import OBJECT_OVERHEAD_BYTES, DistinctCounter
from repro.baselines.hyperloglog import HyperLogLog, hll_index_and_value
from repro.core.mlestimation import compute_coefficients, estimate_from_coefficients
from repro.core.params import make_params
from repro.storage.packed import PackedArray
from repro.storage.serialization import (
    SerializationError,
    TAG_HLLL,
    read_header,
    read_uvarint,
    write_header,
    write_uvarint,
)

#: 3-bit registers hold relative values 0..6; 7 marks an exception.
_REG_MAX = 7


def _optimal_offset(values: list[int]) -> int:
    """The offset minimising the exception count for a value multiset.

    A value ``v`` fits the window iff ``offset <= v < offset + 7``;
    everything else (including still-zero registers once offset > 0) costs
    an exception entry.
    """
    highest = max(values)
    histogram = [0] * (highest + 2)
    for value in values:
        histogram[value] += 1
    prefix = [0]
    for count in histogram:
        prefix.append(prefix[-1] + count)

    total = len(values)
    best_offset = 0
    best_exceptions = total
    for offset in range(0, highest + 1):
        upper = min(offset + _REG_MAX - 1, highest + 1)
        in_window = prefix[upper + 1] - prefix[offset] if upper >= offset else 0
        exceptions = total - in_window
        if exceptions < best_exceptions:
            best_exceptions = exceptions
            best_offset = offset
    return best_offset


class HyperLogLogLog(DistinctCounter):
    """3-bit-register HyperLogLog with global offset and exception list."""

    __slots__ = ("_exceptions", "_m", "_offset", "_p", "_registers", "_threshold")

    constant_time_insert = False

    def __init__(self, p: int = 11) -> None:
        if not 2 <= p <= 26:
            raise ValueError(f"p must be in [2, 26], got {p}")
        self._p = p
        self._m = 1 << p
        self._offset = 0
        self._registers = [0] * self._m  # 3-bit codes: 0..6 relative, 7 = exception
        self._exceptions: dict[int, int] = {}
        # Rebalance once the exception list outgrows this; doubled when a
        # rebalance cannot shrink it (prevents thrashing).
        self._threshold = max(16, self._m // 16)

    @property
    def p(self) -> int:
        return self._p

    @property
    def m(self) -> int:
        return self._m

    @property
    def offset(self) -> int:
        return self._offset

    @property
    def exception_count(self) -> int:
        return len(self._exceptions)

    def __repr__(self) -> str:
        return (
            f"HyperLogLogLog(p={self._p}, offset={self._offset}, "
            f"exceptions={len(self._exceptions)})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HyperLogLogLog):
            return NotImplemented
        return self._p == other._p and self.register_values() == other.register_values()

    # -- value access -------------------------------------------------------------

    def register_value(self, index: int) -> int:
        code = self._registers[index]
        if code == _REG_MAX:
            return self._exceptions[index]
        if code == 0 and self._offset == 0:
            return 0
        return self._offset + code

    def register_values(self) -> list[int]:
        return [self.register_value(i) for i in range(self._m)]

    # -- operations -------------------------------------------------------------------

    def add_hash(self, hash_value: int) -> bool:
        index, k = hll_index_and_value(hash_value, self._p)
        if k <= self.register_value(index):
            return False
        self._store(index, k)
        if len(self._exceptions) > self._threshold:
            self._rebalance()
        return True

    def _store(self, index: int, value: int) -> None:
        relative = value - self._offset
        if 0 <= relative < _REG_MAX:
            self._registers[index] = relative
            self._exceptions.pop(index, None)
        else:
            self._registers[index] = _REG_MAX
            self._exceptions[index] = value

    def _rebalance(self) -> None:
        """O(m) rewrite against the exception-minimising offset."""
        values = self.register_values()
        new_offset = _optimal_offset(values)
        if new_offset != self._offset:
            self._offset = new_offset
            self._exceptions.clear()
            for i, value in enumerate(values):
                relative = value - new_offset
                if 0 <= relative < _REG_MAX and not (value == 0 and new_offset > 0):
                    self._registers[i] = relative
                else:
                    self._registers[i] = _REG_MAX
                    self._exceptions[i] = value
        if len(self._exceptions) > self._threshold:
            self._threshold *= 2

    # -- estimation ----------------------------------------------------------------------

    def estimate(self) -> float:
        """The original HLL estimator (spike around 2.5 m reproduced)."""
        shadow = HyperLogLog(self._p)
        shadow._registers = self.register_values()
        return shadow.estimate_raw()

    def estimate_ml(self) -> float:
        params = make_params(0, 0, self._p)
        coefficients = compute_coefficients(self.register_values(), params)
        return estimate_from_coefficients(coefficients, params, True)

    # -- merge ------------------------------------------------------------------------------

    def merge_inplace(self, other: DistinctCounter) -> "HyperLogLogLog":
        if isinstance(other, HyperLogLogLog):
            values = other.register_values()
        elif isinstance(other, HyperLogLog):
            values = list(other.registers)
        else:
            raise TypeError(f"cannot merge HyperLogLogLog with {type(other).__name__}")
        if len(values) != self._m:
            raise ValueError("precision mismatch")
        for i, value in enumerate(values):
            if value > self.register_value(i):
                self._store(i, value)
        if len(self._exceptions) > self._threshold:
            self._rebalance()
        return self

    def copy(self) -> "HyperLogLogLog":
        clone = HyperLogLogLog(self._p)
        clone._offset = self._offset
        clone._registers = list(self._registers)
        clone._exceptions = dict(self._exceptions)
        clone._threshold = self._threshold
        return clone

    # -- sizes and serialization -----------------------------------------------------------------

    @property
    def memory_bytes(self) -> int:
        # 3-bit register array + exception entries at ~2.5 bytes (13-bit
        # index + 6-bit value, rounded up), the HLLL paper's sparse layout.
        return (
            OBJECT_OVERHEAD_BYTES
            + (3 * self._m + 7) // 8
            + (5 * len(self._exceptions) + 1) // 2
        )

    def to_bytes(self) -> bytes:
        buffer = write_header(TAG_HLLL)
        buffer.append(self._p)
        buffer.append(self._offset)
        packed = PackedArray.from_values(3, self._registers)
        buffer.extend(packed.to_bytes())
        write_uvarint(buffer, len(self._exceptions))
        for index in sorted(self._exceptions):
            write_uvarint(buffer, index)
            write_uvarint(buffer, self._exceptions[index])
        return bytes(buffer)

    @classmethod
    def from_bytes(cls, data: bytes) -> "HyperLogLogLog":
        offset = read_header(data, TAG_HLLL)
        if len(data) < offset + 2:
            raise SerializationError("truncated HyperLogLogLog parameters")
        p, global_offset = data[offset], data[offset + 1]
        sketch = cls(p)
        sketch._offset = global_offset
        packed_bytes = (3 * sketch._m + 7) // 8
        payload = data[offset + 2 : offset + 2 + packed_bytes]
        if len(payload) != packed_bytes:
            raise SerializationError("truncated HyperLogLogLog register array")
        sketch._registers = PackedArray.from_bytes(3, sketch._m, payload).to_list()
        position = offset + 2 + packed_bytes
        count, position = read_uvarint(data, position)
        for _ in range(count):
            index, position = read_uvarint(data, position)
            value, position = read_uvarint(data, position)
            sketch._exceptions[index] = value
        return sketch
