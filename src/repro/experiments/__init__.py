"""Experiment runners: one module per table/figure of the paper.

Run them all with ``python -m repro.experiments``, or individually, e.g.
``python -m repro.experiments figure8``; the pytest-benchmark targets in
``benchmarks/`` wrap the same runners.
"""

from repro.experiments import (  # noqa: F401
    figure1,
    figure2,
    figure3,
    figure4to7,
    figure8,
    figure9,
    figure10,
    figure11,
    table2,
)

EXPERIMENTS = {
    "figure1": figure1.main,
    "figure2": figure2.main,
    "figure3": figure3.main,
    "figure4to7": figure4to7.main,
    "figure8": figure8.main,
    "figure9": figure9.main,
    "figure10": figure10.main,
    "figure11": figure11.main,
    "table2": table2.main,
}

__all__ = ["EXPERIMENTS"]
