"""Figure 10: memory footprint and empirical MVP as functions of n.

For ``n in {10, 20, 50, 100, ..., n_max}`` and every algorithm of the
suite (plus the sparse-mode ExaLogLog of Sec. 4.3), measures the average
memory footprint and the empirical MVP. Expected shape:

* ELL uses constant space from the start; its MVP curve converges to the
  theoretical value once n >> m.
* Variable-size structures (HLL4, HLLL, CPC) grow; sparse modes are
  smaller at small n — reproduced by our sparse ELL.
* SpikeSketch's MVP blows up for small n (lossy compression + smoothing;
  Sec. 5.2 calls this out as disqualifying).
* HLLL shows the estimator spike around n ~ 5e3 (original HLL estimator).
"""

from __future__ import annotations

import math

from repro.experiments.common import env_int, print_experiment
from repro.experiments.suite import AlgorithmSpec, figure10_suite
from repro.simulation.events import logspace_checkpoints
from repro.simulation.memory import empirical_mvp
from repro.simulation.rng import numpy_generator, random_hashes

SIZE_SAMPLE_RUNS = 5


def run(
    n_max: int | None = None,
    runs: int | None = None,
    seed: int = 0xF16E10,
    suite: list[AlgorithmSpec] | None = None,
) -> dict[str, list[dict[str, float]]]:
    n_max = env_int("REPRO_N_FIGURE10", 100_000) if n_max is None else n_max
    runs = env_int("REPRO_RUNS_FIGURE10", 60) if runs is None else runs
    suite = figure10_suite() if suite is None else suite
    checkpoints = [int(c) for c in logspace_checkpoints(10.0, n_max, 3)]

    squared = {spec.name: [0.0] * len(checkpoints) for spec in suite}
    memory = {spec.name: [0.0] * len(checkpoints) for spec in suite}

    for run_index in range(runs):
        rng = numpy_generator(seed, run_index)
        hashes = random_hashes(rng, n_max)
        for spec in suite:
            for index, n in enumerate(checkpoints):
                sketch = spec.from_hashes(hashes[:n])
                error = sketch.estimate() / n - 1.0
                squared[spec.name][index] += error * error
                if run_index < SIZE_SAMPLE_RUNS:
                    memory[spec.name][index] += sketch.memory_bytes

    size_runs = min(runs, SIZE_SAMPLE_RUNS)
    results: dict[str, list[dict[str, float]]] = {}
    for spec in suite:
        rows = []
        for index, n in enumerate(checkpoints):
            rmse = math.sqrt(squared[spec.name][index] / runs)
            mean_memory = memory[spec.name][index] / size_runs
            rows.append(
                {
                    "n": float(n),
                    "rmse_%": 100.0 * rmse,
                    "memory_bytes": mean_memory,
                    "empirical_mvp": empirical_mvp(rmse, mean_memory),
                }
            )
        results[spec.name] = rows
    return results


def main(
    n_max: int | None = None, runs: int | None = None
) -> dict[str, list[dict[str, float]]]:
    results = run(n_max=n_max, runs=runs)
    for name, rows in results.items():
        print_experiment(f"Figure 10: {name}", rows)
    return results


if __name__ == "__main__":
    main()
