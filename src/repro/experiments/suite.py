"""The Table 2 algorithm suite: construction, batch loading, estimation.

Binds every compared algorithm to (a) an empty-sketch factory for the
sequential benches (Figure 11) and (b) a vectorised batch loader that
produces the final sketch state of a hash batch for the statistical
benches (Table 2, Figure 10). Parameters follow Table 2: everything tuned
to roughly 2 % RMSE.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.baselines.cpc import CpcSketch
from repro.baselines.hll_compact4 import HllCompact4
from repro.baselines.hyperloglog import HyperLogLog, MartingaleHyperLogLog
from repro.baselines.hyperlogloglog import HyperLogLogLog
from repro.baselines.spikesketch import SpikeSketch
from repro.backends import exaloglog_state
from repro.core.exaloglog import ExaLogLog
from repro.core.martingale import MartingaleExaLogLog
from repro.core.params import make_params
from repro.core.sparse import SparseExaLogLog
from repro.experiments.common import ingest_hashes


@dataclass(frozen=True)
class AlgorithmSpec:
    """One row of the comparison suite."""

    name: str
    factory: Callable[[], Any]
    from_hashes: Callable[[np.ndarray], Any]
    constant_time_insert: bool
    reference: str


class RawHyperLogLog(HyperLogLog):
    """HyperLogLog whose default estimator is the original raw one
    (DataSketches-style rows of Table 2)."""

    def estimate(self) -> float:
        return self.estimate_raw()


def _ell_loader(t: int, d: int, p: int, cls=ExaLogLog) -> Callable[[np.ndarray], Any]:
    params = make_params(t, d, p)

    def load(hashes: np.ndarray) -> Any:
        if issubclass(cls, MartingaleExaLogLog):
            # The statistical benches only need the register state; replaying
            # the order-dependent estimator would force a scalar loop.
            return cls.from_registers(params, exaloglog_state(hashes, params))
        return ingest_hashes(cls.from_params(params), hashes)

    return load


def _hll_loader(p: int, width: int, raw_estimator: bool) -> Callable[[np.ndarray], Any]:
    cls = RawHyperLogLog if raw_estimator else HyperLogLog

    def load(hashes: np.ndarray) -> Any:
        return ingest_hashes(cls(p, width), hashes)

    return load


def _hll4_loader(p: int) -> Callable[[np.ndarray], Any]:
    def load(hashes: np.ndarray) -> Any:
        shadow = ingest_hashes(HyperLogLog(p), hashes)
        sketch = HllCompact4(p)
        sketch.merge_inplace(shadow)
        return sketch

    return load


def _hlll_loader(p: int) -> Callable[[np.ndarray], Any]:
    def load(hashes: np.ndarray) -> Any:
        shadow = ingest_hashes(HyperLogLog(p), hashes)
        sketch = HyperLogLogLog(p)
        sketch.merge_inplace(shadow)
        return sketch

    return load


def _cpc_loader(p: int) -> Callable[[np.ndarray], Any]:
    def load(hashes: np.ndarray) -> Any:
        return ingest_hashes(CpcSketch(p), hashes)

    return load


def _spike_loader(buckets: int) -> Callable[[np.ndarray], Any]:
    def load(hashes: np.ndarray) -> Any:
        return ingest_hashes(SpikeSketch(buckets), hashes)

    return load


def _sparse_ell_loader(t: int, d: int, p: int, v: int = 26) -> Callable[[np.ndarray], Any]:
    def load(hashes: np.ndarray) -> Any:
        return ingest_hashes(SparseExaLogLog(t, d, p, v), hashes)

    return load


def table2_suite() -> list[AlgorithmSpec]:
    """The ten rows of Table 2 (configurations for ~2 % RMSE)."""
    return [
        AlgorithmSpec(
            "HLL (8-bit, p=11)",
            lambda: RawHyperLogLog(11, 8),
            _hll_loader(11, 8, raw_estimator=True),
            True,
            "apache/datasketches HLL8",
        ),
        AlgorithmSpec(
            "HLL (6-bit, p=11)",
            lambda: RawHyperLogLog(11, 6),
            _hll_loader(11, 6, raw_estimator=True),
            True,
            "apache/datasketches HLL6",
        ),
        AlgorithmSpec(
            "HLL (ML, p=11)",
            lambda: HyperLogLog(11, 6),
            _hll_loader(11, 6, raw_estimator=False),
            True,
            "hash4j HLL",
        ),
        AlgorithmSpec(
            "HLL (4-bit, p=11)",
            lambda: HllCompact4(11),
            _hll4_loader(11),
            False,
            "apache/datasketches HLL4",
        ),
        AlgorithmSpec(
            "CPC (p=10)",
            lambda: CpcSketch(10),
            _cpc_loader(10),
            False,
            "apache/datasketches CPC (surrogate, see DESIGN.md)",
        ),
        AlgorithmSpec(
            "ULL (ML, p=10)",
            lambda: ExaLogLog(0, 2, 10),
            _ell_loader(0, 2, 10),
            True,
            "hash4j ULL",
        ),
        AlgorithmSpec(
            "HLLL (p=11)",
            lambda: HyperLogLogLog(11),
            _hlll_loader(11),
            False,
            "mkarppa/hyperlogloglog",
        ),
        AlgorithmSpec(
            "SpikeSketch (128)",
            lambda: SpikeSketch(128),
            _spike_loader(128),
            True,
            "duyang92/SpikeSketch (behavioural model, see DESIGN.md)",
        ),
        AlgorithmSpec(
            "ELL (t=2,d=24,p=8)",
            lambda: ExaLogLog(2, 24, 8),
            _ell_loader(2, 24, 8),
            True,
            "this work",
        ),
        AlgorithmSpec(
            "ELL (t=2,d=20,p=8)",
            lambda: ExaLogLog(2, 20, 8),
            _ell_loader(2, 20, 8),
            True,
            "this work",
        ),
    ]


def figure10_suite() -> list[AlgorithmSpec]:
    """Figure 10 adds the sparse-mode ELL the paper's Sec. 4.3 proposes."""
    return table2_suite() + [
        AlgorithmSpec(
            "ELL sparse (t=2,d=20,p=8,v=26)",
            lambda: SparseExaLogLog(2, 20, 8, 26),
            _sparse_ell_loader(2, 20, 8, 26),
            True,
            "this work (Sec. 4.3)",
        ),
    ]


def figure11_suite() -> list[AlgorithmSpec]:
    """Figure 11's operation-timing suite (adds martingale variants)."""
    return table2_suite() + [
        AlgorithmSpec(
            "ELL (t=2,d=20,p=8, martingale)",
            lambda: MartingaleExaLogLog(2, 20, 8),
            _ell_loader(2, 20, 8, cls=MartingaleExaLogLog),
            True,
            "this work",
        ),
        AlgorithmSpec(
            "ELL (t=2,d=24,p=8, martingale)",
            lambda: MartingaleExaLogLog(2, 24, 8),
            _ell_loader(2, 24, 8, cls=MartingaleExaLogLog),
            True,
            "this work",
        ),
        AlgorithmSpec(
            "HLL (martingale, p=11)",
            lambda: MartingaleHyperLogLog(11),
            _hll_loader(11, 6, raw_estimator=False),
            True,
            "martingale baseline",
        ),
    ]
