"""Figure 8: bias and RMSE of the ML and martingale estimators.

The paper's 16 panels sweep (t, d) in {(1,9), (2,16), (2,20), (2,24)} and
p in {4, 6, 8, 10}, with 100 000 simulation runs per panel, distinct
counts up to 1e21 (individual insertions below 1e6, the waiting-time
strategy beyond — both reproduced in :mod:`repro.simulation`).

Expected shape (verified here): the empirical RMSE matches the theoretical
``sqrt(MVP/((q+d) m))`` for intermediate n, is smaller for small n, dips
slightly at the end of the operating range (~2**64), and the bias is
negligible against the RMSE.

Scaling: runs default to ``REPRO_RUNS_FIGURE8`` (50); checkpoints stop at
2e19 because beyond ~1e20 every register saturates and the ML estimate is
rightly infinite (the paper's operating-range statement, Sec. 2.3).
"""

from __future__ import annotations

from repro.core.params import PAPER_CONFIGURATIONS, make_params
from repro.experiments.common import env_int, print_experiment
from repro.simulation.evaluation import ErrorEvaluation, evaluate_estimation_error
from repro.simulation.events import logspace_checkpoints

P_VALUES = (4, 6, 8, 10)
N_MAX = 2e19


def panel_checkpoints(per_decade: int = 1) -> list[float]:
    return logspace_checkpoints(1.0, N_MAX, per_decade)


def run_panel(
    t: int,
    d: int,
    p: int,
    runs: int | None = None,
    seed: int = 0xF16E8,
    per_decade: int = 1,
) -> ErrorEvaluation:
    """One panel of Figure 8."""
    runs = env_int("REPRO_RUNS_FIGURE8", 50) if runs is None else runs
    params = make_params(t, d, p)
    # Exact phase scaled to the sketch size: big enough to cover the region
    # where the waiting-time approximation is weakest (n up to ~100 m).
    n_exact = min(1 << 17, 512 * params.m)
    return evaluate_estimation_error(
        params,
        panel_checkpoints(per_decade),
        runs=runs,
        seed=seed + (t << 16) + (d << 8) + p,
        n_exact=n_exact,
    )


def panel_rows(evaluation: ErrorEvaluation) -> list[dict[str, float]]:
    rows = []
    for index, n in enumerate(evaluation.ml.checkpoints):
        rows.append(
            {
                "n": n,
                "ml_bias": evaluation.ml.relative_bias[index],
                "ml_rmse": evaluation.ml.relative_rmse[index],
                "ml_theory": evaluation.ml.theoretical_rmse,
                "mart_bias": evaluation.martingale.relative_bias[index],
                "mart_rmse": evaluation.martingale.relative_rmse[index],
                "mart_theory": evaluation.martingale.theoretical_rmse,
            }
        )
    return rows


def main(
    configurations=PAPER_CONFIGURATIONS, p_values=P_VALUES, runs: int | None = None
) -> dict[tuple[int, int, int], ErrorEvaluation]:
    results = {}
    for t, d in configurations:
        for p in p_values:
            evaluation = run_panel(t, d, p, runs=runs)
            results[(t, d, p)] = evaluation
            title = (
                f"Figure 8 panel t={t} d={d} p={p} "
                f"({(6 + t + d) * (1 << p) // 8} bytes, {evaluation.runs} runs, "
                f"newton_max={evaluation.newton_iterations_max})"
            )
            print_experiment(title, panel_rows(evaluation))
    return results


if __name__ == "__main__":
    main()
