"""Figure 2: geometric PMF Eq. (2) vs the approximated PMF Eq. (8).

For ``b = 2**(2-t)``, chunks of ``2**t`` consecutive update values carry
the same total probability under both distributions; the experiment prints
both PMFs for t = 1 and t = 2 (the panels of Figure 2) and verifies the
chunk identity numerically.
"""

from __future__ import annotations

from repro.core.distribution import approx_pmf_unbounded, chunk_probability, geometric_pmf
from repro.experiments.common import print_experiment

K_MAX = 20


def run(t: int) -> list[dict[str, float]]:
    """PMF table for one panel (one value of t)."""
    base = 2.0 ** (2.0 ** -t)
    rows = []
    for k in range(1, K_MAX + 1):
        rows.append(
            {
                "k": k,
                "geometric": geometric_pmf(k, base),
                "approximate": approx_pmf_unbounded(k, t),
            }
        )
    return rows


def chunk_check(t: int, chunks: int = 8) -> list[dict[str, float]]:
    """Verify the Sec. 2.2 chunk identity for both PMFs."""
    base = 2.0 ** (2.0 ** -t)
    rows = []
    for c in range(chunks):
        k_low = c * (1 << t) + 1
        k_high = (c + 1) * (1 << t)
        geometric_sum = sum(geometric_pmf(k, base) for k in range(k_low, k_high + 1))
        approx_sum = sum(approx_pmf_unbounded(k, t) for k in range(k_low, k_high + 1))
        rows.append(
            {
                "chunk": c,
                "expected_2^-(c+1)": chunk_probability(c, t),
                "geometric_sum": geometric_sum,
                "approximate_sum": approx_sum,
            }
        )
    return rows


def main() -> dict[int, list[dict[str, float]]]:
    results = {}
    for t in (1, 2):
        rows = run(t)
        results[t] = rows
        print_experiment(f"Figure 2 (t={t}): PMFs, b = 2^(2-t)", rows)
        print_experiment(f"Figure 2 (t={t}): chunk probability identity", chunk_check(t))
    return results


if __name__ == "__main__":
    main()
