"""CLI entry point: ``python -m repro.experiments [name ...]``."""

from __future__ import annotations

import sys

from repro.experiments import EXPERIMENTS


def main(argv: list[str]) -> int:
    names = argv or list(EXPERIMENTS)
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2
    for name in names:
        EXPERIMENTS[name]()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
