"""Table 2: space-efficiency comparison of mergeable distinct counters.

For every algorithm of the suite, inserts ``n`` distinct random elements,
measures the empirical RMSE over many runs plus the in-memory and
serialized sizes, and reports the two empirical MVPs
``(size in bits) * RMSE**2`` — the paper's headline comparison, sorted by
in-memory MVP. Expected ordering (paper values at n = 1e6, 1M runs):

    HLL8 9.66 > HLL6 7.54 > HLL-ML 6.63 > HLL4 5.60 > CPC 5.30 >
    ULL 4.78 > HLLL 4.64 > SpikeSketch >= 4.19 > ELL(2,24) 3.93 >
    ELL(2,20) 3.86;   serialized CPC drops to 2.46.

Scaling knobs: ``REPRO_RUNS_TABLE2`` (default 150 runs) and
``REPRO_N_TABLE2`` (default 100 000; the paper uses 1e6 — both are far
beyond every sparse-to-dense transition, so the asymptotic MVP is what is
measured either way).
"""

from __future__ import annotations

import math

from repro.experiments.common import env_int, print_experiment
from repro.experiments.suite import AlgorithmSpec, table2_suite
from repro.simulation.memory import empirical_mvp
from repro.simulation.rng import numpy_generator, random_hashes

#: How many final states per algorithm get fully serialized for size
#: measurement (serialization of the CPC surrogate is expensive by design).
SIZE_SAMPLE_RUNS = 5


def run(
    n: int | None = None,
    runs: int | None = None,
    seed: int = 0x7AB1E2,
    suite: list[AlgorithmSpec] | None = None,
) -> list[dict[str, object]]:
    n = env_int("REPRO_N_TABLE2", 100_000) if n is None else n
    runs = env_int("REPRO_RUNS_TABLE2", 150) if runs is None else runs
    suite = table2_suite() if suite is None else suite

    squared_errors = {spec.name: 0.0 for spec in suite}
    memory_sums = {spec.name: 0.0 for spec in suite}
    serialized_sums = {spec.name: 0.0 for spec in suite}

    for run_index in range(runs):
        rng = numpy_generator(seed, run_index)
        hashes = random_hashes(rng, n)
        for spec in suite:
            sketch = spec.from_hashes(hashes)
            error = sketch.estimate() / n - 1.0
            squared_errors[spec.name] += error * error
            if run_index < SIZE_SAMPLE_RUNS:
                memory_sums[spec.name] += sketch.memory_bytes
                serialized_sums[spec.name] += len(sketch.to_bytes())

    size_runs = min(runs, SIZE_SAMPLE_RUNS)
    rows = []
    for spec in suite:
        rmse = math.sqrt(squared_errors[spec.name] / runs)
        memory = memory_sums[spec.name] / size_runs
        serialized = serialized_sums[spec.name] / size_runs
        rows.append(
            {
                "algorithm": spec.name,
                "rmse_%": 100.0 * rmse,
                "memory_bytes": memory,
                "serialized_bytes": serialized,
                "mvp_memory": empirical_mvp(rmse, memory),
                "mvp_serialized": empirical_mvp(rmse, serialized),
                "constant_time_insert": "yes" if spec.constant_time_insert else "no",
            }
        )
    rows.sort(key=lambda row: -float(row["mvp_memory"]))  # type: ignore[arg-type]
    return rows


def main(n: int | None = None, runs: int | None = None) -> list[dict[str, object]]:
    rows = run(n=n, runs=runs)
    print_experiment("Table 2: space-efficiency comparison (sorted by memory MVP)", rows)
    return rows


if __name__ == "__main__":
    main()
