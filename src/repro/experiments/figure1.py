"""Figure 1: memory over relative standard error for different MVPs.

Pure consequence of Eq. (1): ``memory_bits = MVP / error**2``. The figure
shows, for MVP in {2, 3, 4, 5, 6, 8}, how many bytes a sketch needs to
reach a target relative standard error between 1 % and 5 %.
"""

from __future__ import annotations

from repro.experiments.common import print_experiment
from repro.theory.mvp import memory_for_error

MVPS = (8.0, 6.0, 5.0, 4.0, 3.0, 2.0)
ERRORS_PERCENT = (1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0, 4.5, 5.0)


def run() -> list[dict[str, float]]:
    """Rows: one per relative error, memory in bytes per MVP curve."""
    rows = []
    for error_percent in ERRORS_PERCENT:
        row: dict[str, float] = {"relative_error_%": error_percent}
        for mvp in MVPS:
            bits = memory_for_error(mvp, error_percent / 100.0)
            row[f"MVP={mvp:g}_bytes"] = bits / 8.0
        rows.append(row)
    return rows


def main() -> list[dict[str, float]]:
    rows = run()
    print_experiment("Figure 1: memory vs relative standard error", rows)
    return rows


if __name__ == "__main__":
    main()
