"""Figure 11: operation timings (insert, estimate, serialize, merge).

The paper benchmarks on an EC2 c5.metal with JMH; this reproduction uses
``time.perf_counter`` (CLI) or pytest-benchmark (``benchmarks/``) on the
local interpreter. Absolute numbers are Python-vs-Java and incomparable;
what the bench reproduces are the paper's *relative* observations:

* ELL insertion is constant time, independent of p, t, d;
* CPC serialization is more than an order of magnitude slower than the
  plain-array sketches (the compression step);
* martingale-tracking sketches estimate in O(1);
* ELL serialize/merge are plain array copies/loops, among the fastest.
"""

from __future__ import annotations

import time
from typing import Any, Callable

from repro.experiments.common import env_int, print_experiment
from repro.experiments.suite import AlgorithmSpec, figure11_suite
from repro.simulation.rng import numpy_generator, random_hashes

OPERATIONS = ("insert", "estimate", "serialize", "merge", "merge_estimate")


def make_operation(
    spec: AlgorithmSpec, operation: str, n: int, seed: int = 0xF16E11
) -> tuple[Callable[[], Any], float]:
    """Build a zero-argument callable for one (algorithm, operation, n) cell.

    Returns ``(callable, work_units)`` where work_units is the number of
    elementary operations per call (n for insert, 1 otherwise) so callers
    can report per-element times like the paper does.
    """
    rng = numpy_generator(seed, n)
    hashes = random_hashes(rng, n).tolist()
    if operation == "insert":
        factory = spec.factory

        def insert() -> Any:
            sketch = factory()
            add_hash = sketch.add_hash
            for h in hashes:
                add_hash(h)
            return sketch

        return insert, float(n)

    import numpy as np

    left = spec.from_hashes(np.array(hashes[: n // 2 or 1], dtype=np.uint64))
    right = spec.from_hashes(np.array(hashes[n // 2 :], dtype=np.uint64))

    if operation == "estimate":
        return left.estimate, 1.0
    if operation == "serialize":
        return left.to_bytes, 1.0
    if operation == "merge":
        if not getattr(spec.factory(), "supports_merge", True):
            raise NotImplementedError(f"{spec.name} does not support merge")
        return (lambda: left.copy().merge_inplace(right)), 1.0
    if operation == "merge_estimate":
        return (lambda: left.copy().merge_inplace(right).estimate()), 1.0
    raise ValueError(f"unknown operation {operation!r}")


def time_operation(func: Callable[[], Any], repetitions: int = 3) -> float:
    """Best-of-N wall time of one call."""
    best = float("inf")
    for _ in range(repetitions):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


def run(
    n_values: tuple[int, ...] | None = None,
    suite: list[AlgorithmSpec] | None = None,
) -> list[dict[str, object]]:
    if n_values is None:
        n_values = (1000, env_int("REPRO_N_FIGURE11", 100_000))
    suite = figure11_suite() if suite is None else suite
    rows = []
    for spec in suite:
        for n in n_values:
            row: dict[str, object] = {"algorithm": spec.name, "n": n}
            for operation in OPERATIONS:
                try:
                    func, work = make_operation(spec, operation, n)
                except NotImplementedError:
                    row[f"{operation}_s"] = float("nan")
                    continue
                row[f"{operation}_s"] = time_operation(func) / work
            rows.append(row)
    return rows


def main() -> list[dict[str, object]]:
    rows = run()
    print_experiment(
        "Figure 11: per-operation wall times (insert is per element)", rows
    )
    return rows


if __name__ == "__main__":
    main()
