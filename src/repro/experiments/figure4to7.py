"""Figures 4-7: the four MVP formulas swept over d (paper Sec. 2.4).

For ``t in {0, 1, 2, 3}`` and ``d in [0, 64]`` the experiment evaluates

* Figure 4 — Eq. (3), dense storage + efficient (ML) estimator,
* Figure 5 — Eq. (6), dense storage + martingale estimator,
* Figure 6 — Eq. (5), compressed storage + efficient estimator,
* Figure 7 — Eq. (7), compressed storage + martingale estimator,

locates the minima the paper's arrows point at, and reports the named
reference points: HLL = ELL(0,0), EHLL = ELL(0,1), ULL = ELL(0,2),
ELL(1,9), ELL(2,16), ELL(2,20), ELL(2,24), with the expected values
MVP(ELL(2,20)) = 3.67 (43 % below HLL), martingale MVP(ELL(2,16)) = 2.77
(33 % below HLL).
"""

from __future__ import annotations

from repro.experiments.common import print_experiment
from repro.theory.mvp import (
    mvp_hll,
    mvp_martingale_compressed,
    mvp_martingale_dense,
    mvp_ml_compressed,
    mvp_ml_dense,
    optimal_d,
    savings_vs_hll,
)

T_VALUES = (0, 1, 2, 3)
D_MAX = 64

FIGURES = {
    "figure4": ("Eq. (3) dense + ML", mvp_ml_dense),
    "figure5": ("Eq. (6) dense + martingale", mvp_martingale_dense),
    "figure6": ("Eq. (5) compressed + ML", mvp_ml_compressed),
    "figure7": ("Eq. (7) compressed + martingale", mvp_martingale_compressed),
}

NAMED_CONFIGURATIONS = (
    ("HLL", 0, 0),
    ("EHLL", 0, 1),
    ("ULL", 0, 2),
    ("ELL(1,9)", 1, 9),
    ("ELL(2,16)", 2, 16),
    ("ELL(2,20)", 2, 20),
    ("ELL(2,24)", 2, 24),
)


def sweep(figure: str, d_step: int = 1) -> list[dict[str, float]]:
    """MVP vs d, one column per t (the four curves of one figure)."""
    _, formula = FIGURES[figure]
    rows = []
    for d in range(0, D_MAX + 1, d_step):
        row: dict[str, float] = {"d": d}
        for t in T_VALUES:
            row[f"t={t}"] = formula(t, d)
        rows.append(row)
    return rows


def minima(figure: str) -> list[dict[str, float]]:
    """The per-t minima (the arrows in Figures 4-7)."""
    _, formula = FIGURES[figure]
    rows = []
    for t in T_VALUES:
        best_d, best_value = optimal_d(t, formula, D_MAX)
        rows.append(
            {
                "t": t,
                "optimal_d": best_d,
                "mvp": best_value,
                "saving_vs_hll_%": 100.0 * savings_vs_hll(best_value)
                if figure == "figure4"
                else float("nan"),
            }
        )
    return rows


def named_points() -> list[dict[str, float]]:
    """The reference markers of Figures 4-7 + Sec. 2.4's headline numbers."""
    rows = []
    for name, t, d in NAMED_CONFIGURATIONS:
        dense_ml = mvp_ml_dense(t, d)
        rows.append(
            {
                "config": name,
                "dense_ml": dense_ml,
                "dense_martingale": mvp_martingale_dense(t, d),
                "compressed_ml": mvp_ml_compressed(t, d),
                "compressed_martingale": mvp_martingale_compressed(t, d),
                "saving_vs_hll_%": 100.0 * savings_vs_hll(dense_ml),
            }
        )
    return rows


def main() -> dict[str, list[dict[str, float]]]:
    results: dict[str, list[dict[str, float]]] = {}
    for figure, (label, _) in FIGURES.items():
        rows = sweep(figure, d_step=4)
        results[figure] = rows
        print_experiment(f"{figure}: {label} (MVP vs d)", rows)
        print_experiment(f"{figure}: minima", minima(figure))
    named = named_points()
    results["named"] = named
    print_experiment(
        f"Named configurations (HLL MVP = {mvp_hll():.3f})", named
    )
    return results


if __name__ == "__main__":
    main()
