"""Figure 9: estimating the distinct count from collected hash tokens.

Sec. 4.3 / Algorithm 7: while in sparse mode, ExaLogLog keeps distinct
``(v+6)``-bit hash tokens; the distinct count is ML-estimated directly
from the token set. The paper simulates 100 000 runs for
``v in {6, 8, 10, 12, 18, 26}`` and distinct counts up to 1e5, finding
unbiased estimates with slightly *smaller* error than an ELL sketch with
``p + t = v`` (a token set is information-equivalent to d -> infinity).

The token pipeline is vectorised here (tokenise + dedup via np.unique +
histogram of NLZ classes), then solved with the shared Newton machinery.
"""

from __future__ import annotations

import math

import numpy as np

from repro.backends import tokenize_hashes
from repro.estimation.newton import solve_ml_equation
from repro.experiments.common import env_int, print_experiment
from repro.simulation.events import logspace_checkpoints
from repro.simulation.rng import numpy_generator, random_hashes

V_VALUES = (6, 8, 10, 12, 18, 26)
N_MAX = 100_000


def tokenize_batch(hashes: np.ndarray, v: int) -> np.ndarray:
    """Vectorised Sec. 4.3 token mapping (now shared with the backends)."""
    return tokenize_hashes(hashes, v)


def estimate_from_token_array(tokens: np.ndarray, v: int) -> float:
    """Vectorised Algorithm 7 + the shared Newton solver."""
    distinct = np.unique(tokens)
    classes = np.minimum(v + 1 + (distinct & 63), 64)
    counts = np.bincount(classes, minlength=65)
    alpha_scaled = 1 << 64
    beta: dict[int, int] = {}
    for j in range(v + 1, 65):
        count = int(counts[j])
        if count:
            beta[j] = count
            alpha_scaled -= count << (64 - j)
    return solve_ml_equation(alpha_scaled / float(1 << 64), beta).nu


def run_v(
    v: int, runs: int | None = None, seed: int = 0xF16E9, n_max: int = N_MAX
) -> list[dict[str, float]]:
    """One panel of Figure 9: bias/RMSE over n for one token size."""
    runs = env_int("REPRO_RUNS_FIGURE9", 100) if runs is None else runs
    checkpoints = [int(c) for c in logspace_checkpoints(1.0, n_max, 2)]
    sums = [0.0] * len(checkpoints)
    squares = [0.0] * len(checkpoints)
    for run in range(runs):
        rng = numpy_generator(seed + v, run)
        hashes = random_hashes(rng, n_max)
        tokens = tokenize_batch(hashes, v)
        for index, n in enumerate(checkpoints):
            estimate = estimate_from_token_array(tokens[:n], v)
            error = estimate / n - 1.0
            sums[index] += error
            squares[index] += error * error
    return [
        {
            "n": float(n),
            "bias": sums[i] / runs,
            "rmse": math.sqrt(squares[i] / runs),
            "token_bits": v + 6,
        }
        for i, n in enumerate(checkpoints)
    ]


def main(v_values=V_VALUES, runs: int | None = None) -> dict[int, list[dict[str, float]]]:
    results = {}
    for v in v_values:
        rows = run_v(v, runs=runs)
        results[v] = rows
        print_experiment(f"Figure 9: token estimation, v={v} ({v + 6}-bit tokens)", rows)
    return results


if __name__ == "__main__":
    main()
