"""Shared experiment infrastructure: scaling knobs and table printing.

Every experiment runner returns structured rows *and* prints the series
the paper reports, so both the benches (``benchmarks/``) and the CLI
(``python -m repro.experiments``) reuse them.

Scaling: the paper uses 100 000 simulation runs (1 000 000 for Table 2) on
a JVM testbed. Pure-Python defaults are smaller and overridable through
environment variables; EXPERIMENTS.md records the settings used for the
committed results.
"""

from __future__ import annotations

import os
from typing import Any, Iterable, Sequence


def env_int(name: str, default: int) -> int:
    """Integer knob from the environment (e.g. ``REPRO_RUNS_FIGURE8=200``)."""
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        return int(raw)
    except ValueError:
        raise ValueError(f"environment variable {name} must be an integer, got {raw!r}")


def env_float(name: str, default: float) -> float:
    """Float knob from the environment."""
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        return float(raw)
    except ValueError:
        raise ValueError(f"environment variable {name} must be a number, got {raw!r}")


def ingest_hashes(sketch: Any, hashes) -> Any:
    """Load a hash batch through the unified bulk-ingest API.

    Every sketch in the library exposes ``add_hashes`` (vectorised where
    the structure allows, scalar loop otherwise); this helper is the one
    place the experiment runners go through, with a loop fallback for
    foreign objects that only offer ``add_hash``.
    """
    add_hashes = getattr(sketch, "add_hashes", None)
    if add_hashes is not None:
        add_hashes(hashes)
        return sketch
    for hash_value in hashes.tolist():
        sketch.add_hash(int(hash_value))
    return sketch


def format_table(rows: Sequence[dict[str, Any]], columns: Sequence[str] | None = None) -> str:
    """Render rows as an aligned text table."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())

    def render(value: Any) -> str:
        if isinstance(value, float):
            if value == 0.0:
                return "0"
            magnitude = abs(value)
            if magnitude >= 1e6 or magnitude < 1e-4:
                return f"{value:.3e}"
            return f"{value:.4g}"
        return str(value)

    table = [[render(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(column), *(len(line[i]) for line in table))
        for i, column in enumerate(columns)
    ]
    header = "  ".join(column.ljust(widths[i]) for i, column in enumerate(columns))
    separator = "  ".join("-" * width for width in widths)
    body = "\n".join(
        "  ".join(line[i].ljust(widths[i]) for i in range(len(columns)))
        for line in table
    )
    return f"{header}\n{separator}\n{body}"


def print_experiment(title: str, rows: Iterable[dict[str, Any]], columns=None) -> None:
    """Print an experiment header plus its table."""
    rows = list(rows)
    print(f"\n== {title} ==")
    print(format_table(rows, columns))
