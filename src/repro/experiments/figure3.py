"""Figure 3: worked example of two insertions (p=2, t=2, d=6).

The paper's Figure 3 walks two element insertions through Algorithm 2 on
a 4-register sketch with 14-bit registers. This runner reconstructs the
walkthrough: it shows, for two hash values, how the hash splits into the
NLZ field, register index and low bits, the resulting update value
(Eq. (9)), and the register transition including the window-bit shift.
"""

from __future__ import annotations

from repro.core.distribution import update_value_from_hash
from repro.core.params import make_params
from repro.core.register import decode, update
from repro.experiments.common import print_experiment

PARAMS = make_params(2, 6, 2)

#: Two example hash values chosen to reproduce the Figure 3 situation:
#: the second insertion hits the same register with a smaller update value.
EXAMPLE_HASHES = (
    # nlz(h | 0b1111) = 3, index = 2, low bits = 0b01 -> k = 3*4 + 1 + 1 = 14
    (0b0001 << 60) | (0b10 << 2) | 0b01,
    # nlz = 2, index = 2, low bits = 0b11 -> k = 2*4 + 3 + 1 = 12
    (0b001 << 61) | (0b10 << 2) | 0b11,
)


def run(hashes: tuple[int, int] = EXAMPLE_HASHES) -> list[dict[str, object]]:
    """Insert the two example elements; one row per insertion."""
    registers = [0] * PARAMS.m
    rows: list[dict[str, object]] = []
    for step, hash_value in enumerate(hashes, start=1):
        index, k = update_value_from_hash(hash_value, PARAMS)
        before = registers[index]
        after = update(before, k, PARAMS.d)
        registers[index] = after
        u, window = decode(after, PARAMS.d)
        rows.append(
            {
                "insertion": step,
                "hash": f"{hash_value:016x}",
                "register": index,
                "update_value_k": k,
                "register_before": f"{before:014b}",
                "register_after": f"{after:014b}",
                "max_u": u,
                "window_bits": f"{window:06b}",
            }
        )
    return rows


def main() -> list[dict[str, object]]:
    rows = run()
    print_experiment(
        "Figure 3: two insertions into ExaLogLog(p=2, t=2, d=6), 14-bit registers",
        rows,
    )
    return rows


if __name__ == "__main__":
    main()
