"""Vectorised batch estimation engine (paper Alg. 3 + Alg. 8, many sketches).

The scalar estimation pipeline — :func:`repro.core.mlestimation.compute_coefficients`
(Algorithm 3) followed by :func:`repro.estimation.newton.solve_ml_equation`
(Algorithm 8) — walks every register in Python and solves one sketch at a
time. This module computes the same quantities with NumPy:

* :func:`register_coefficients` extracts the ``(alpha, beta)`` coefficients
  of Eq. (15) for a whole ``(k, m)`` register matrix at once. The
  ``alpha' = alpha * 2**(64-p)`` accumulation stays exact integer
  arithmetic: every contribution is added modulo ``2**64`` in uint64, and
  since the true total lies in ``[0, 2**64]`` (the endpoint only for a row
  of all-initial registers, which the ``beta``-is-empty mask handles before
  alpha is ever used), the wrapped value equals the exact value for every
  non-empty row. Window-bit counting uses either packed per-half count
  LUTs (``d <= 24``) or a per-offset loop, both integer-exact.

* :func:`solve_ml_equations` iterates Algorithm 8 on all rows of a
  ``(k, u)`` beta matrix simultaneously with a convergence mask. Every
  float operation is performed per row in exactly the scalar solver's
  order, so results are bit-identical — including the two transcendental
  steps (the Lemma B.3 starting point and the final ``log1p``), which go
  through ``math.*`` per row because NumPy's SIMD ``expm1``/``log1p`` may
  differ from libm in the last ulp.

* :func:`batch_estimate_sketches` stacks a mixed collection of sketches —
  dense ExaLogLog registers, sparse token mode, several parameterisations —
  into one coefficient set and runs a single simultaneous Newton solve.

The contract, asserted by the equivalence tests and by
``benchmarks/bench_estimate.py``: batched estimates equal the scalar
pipeline bit for bit, including ``saturated`` (infinite) and empty rows.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.core.distribution import omega_scaled_table, phi_table
from repro.core.params import ExaLogLogParams
from repro.estimation.newton import MAX_ITERATIONS
from repro.obs import metrics as _metrics

_U64 = np.uint64

_SOLVE_BATCH_SIZE = _metrics.histogram(
    "estimation.solve_batch_size",
    "Rows per simultaneous ML-equation solve.",
)
_NEWTON_ITERATIONS = _metrics.histogram(
    "estimation.newton_iterations",
    "Newton iterations per solved row.",
    buckets=tuple(float(i) for i in range(1, 33)),
)

#: Columns of the beta matrices: exponents ``u`` in ``[0, 65]`` (dense
#: registers use at most ``64 - p <= 62``, hash tokens at most 64).
EXPONENT_AXIS = 66

# The packed-LUT window path applies for d in [4, 24] (half patterns of at
# most 12 bits), t >= 1 (window chunks of >= 2 update values), and
# p <= 18 (so packed per-(row, u) count sums stay exact in float64).
_LUT_MAX_D = 24
_LUT_MAX_P = 18
_LUT_HALF_BITS = 12

#: Rows are processed in chunks of about this many register values so the
#: ~10 temporary arrays of a chunk stay cache-resident (same rationale as
#: ``repro.backends.bulk.BULK_CHUNK``; results are per-row, so chunking
#: never changes them).
_CHUNK_ELEMENTS = 1 << 19


@dataclass(frozen=True)
class BatchCoefficients:
    """Per-row (alpha, beta) coefficients of Eq. (15) for ``k`` sketches."""

    alpha: np.ndarray
    """float64 ``(k,)``: ``alpha_scaled / 2**(64-p)`` (exactly rounded)."""

    alpha_scaled: np.ndarray
    """uint64 ``(k,)``: exact ``alpha * 2**(64-p)`` modulo ``2**64``.

    Equals the scalar Algorithm 3 integer for every non-empty row; an
    all-initial row wraps its true value ``2**64`` to 0 (masked by
    :attr:`is_empty` before use).
    """

    beta: np.ndarray
    """int64 ``(k, EXPONENT_AXIS)``: counts ``beta_u`` keyed by exponent."""

    @property
    def is_empty(self) -> np.ndarray:
        """Rows where all registers were in the initial state."""
        return ~(self.beta > 0).any(axis=1)

    @property
    def is_saturated(self) -> np.ndarray:
        """Non-empty rows whose alpha vanished (estimate infinite)."""
        return (self.alpha_scaled == _U64(0)) & ~self.is_empty


@dataclass(frozen=True)
class BatchMLSolution:
    """Per-row result of a simultaneous ML equation solve."""

    nu: np.ndarray
    """float64 ``(k,)``: estimated Poisson rate per register."""

    iterations: np.ndarray
    """int64 ``(k,)``: Newton iterations performed per row."""

    saturated: np.ndarray
    """bool ``(k,)``: rows where alpha was zero (estimate infinite)."""


# -- Algorithm 3, vectorised ---------------------------------------------------

_MOD64 = 1 << 64


def _as_int64(value: int) -> int:
    """Reduce a Python int modulo ``2**64`` into int64's two's complement."""
    value &= _MOD64 - 1
    return value - _MOD64 if value >= (1 << 63) else value


@dataclass(frozen=True)
class _RegisterPlan:
    """Precomputed per-parameter tables for the LUT window path.

    The window bit at offset ``j`` (register bit ``d - j``) records update
    value ``k = u - j``, whose likelihood exponent is determined by the
    chunk ``(k - 1) >> t``. The chunk *offset* ``rel`` relative to the
    chunk of ``k = u - 1`` depends only on ``j`` and the alignment
    ``a = (u - 2) mod 2**t`` — so per <=12-bit half of the window field,
    one lookup indexed by ``(a, half pattern)`` yields the set-bit count
    of every chunk offset at once. Counts are packed into per-half
    *slots* (one per ``rel``), several slots per float64 word, with a
    spacing chosen so bincount's float summation stays integer-exact.

    Everything u-dependent is a gather table here, and the whole alpha
    accumulation collapses to two einsums per row chunk:

        alpha = sum_u hist[u] * weight[u] - sum_e rho[e] * window_beta[e]

    where ``weight[u] = omega'(u) + sum of rho over u's valid window
    positions`` (all exact integers modulo ``2**64``).
    """

    slot_mask: int
    """``2**spacing - 1`` for the per-word slot spacing."""

    halves: tuple
    """Per half: ``(j0, width, words)`` where each word is
    ``(lut, ((offset, e_map), ...))`` — a float64 gather table plus its
    packed slots' bit offsets and per-u exponent maps (-1 where the slot
    holds no valid window position of u)."""

    vmask: object
    """Per u: mask keeping the top ``min(d, u-1)`` valid window bits."""

    weight: object
    """Per u (int64, mod 2**64): ``omega'(u)`` plus the valid-window mass."""

    rho_exp: object
    """Per exponent e (int64, mod 2**64): ``2**(shift - e)``."""


@lru_cache(maxsize=32)
def _register_plan(params: ExaLogLogParams):
    """Build the LUT window plan, or None where the generic loop applies."""
    d, t, p = params.d, params.t, params.p
    if not (t >= 1 and 4 <= d <= _LUT_MAX_D and p <= _LUT_MAX_P):
        return None
    chunk = 1 << t
    shift = 64 - p
    m = params.m
    u_cap = params.max_update_value

    # Packing: no inter-slot carries needs m * 2**t < 2**spacing (a slot's
    # per-(row, u) count is at most 2**t bits per register times m); exact
    # float64 bucket sums need m * 2**t * 2**(spacing * (slots-1)) <= 2**53.
    spacing = max(12, (m << t).bit_length())
    slots_per_word = 4
    while (m << t) << (spacing * (slots_per_word - 1)) > (1 << 53):
        slots_per_word -= 1

    table_dtype = np.int32 if params.register_bits <= 31 else np.int64
    halves = []
    j0 = 0
    while j0 < d:
        width = min(_LUT_HALF_BITS, d - j0)
        # Chunk offsets (rel) this half can produce, each its own slot.
        rels = sorted(
            {
                -((a - j + 1) >> t)
                for a in range(chunk)
                for j in range(j0 + 1, j0 + width + 1)
            }
        )
        slot_of = {rel: s for s, rel in enumerate(rels)}
        nwords = (len(rels) + slots_per_word - 1) // slots_per_word
        luts = [np.zeros(chunk << width, dtype=np.float64) for _ in range(nwords)]
        pattern = np.arange(1 << width, dtype=np.int64)
        for a in range(chunk):
            base = a << width
            for q in range(width):
                j = j0 + width - q
                s = slot_of[-((a - j + 1) >> t)]
                luts[s // slots_per_word][base : base + (1 << width)] += (
                    (pattern >> q) & 1
                ) * float(1 << (spacing * (s % slots_per_word)))
        # Per (half, rel): the exponent each u value's counts feed, or -1
        # when the slot holds none of u's valid window positions.
        e_maps = {rel: np.full(u_cap + 1, -1, dtype=np.int16) for rel in rels}
        for uv in range(2, u_cap + 1):
            a = (uv - 2) & (chunk - 1)
            c0 = (uv - 2) >> t
            for j in range(j0 + 1, min(j0 + width, min(d, uv - 1)) + 1):
                rel = -((a - j + 1) >> t)
                e_maps[rel][uv] = min(t + 1 + c0 - rel, 64 - p)
        words = []
        for w, lut in enumerate(luts):
            lut.setflags(write=False)
            slots = []
            for s in range(w * slots_per_word, min((w + 1) * slots_per_word, len(rels))):
                e_map = e_maps[rels[s]]
                e_map.setflags(write=False)
                slots.append((spacing * (s % slots_per_word), e_map))
            words.append((lut, tuple(slots)))
        halves.append((j0, width, tuple(words)))
        j0 += width

    omegas = omega_scaled_table(params)
    vmask = np.zeros(u_cap + 1, dtype=table_dtype)
    weight = np.zeros(u_cap + 1, dtype=np.int64)
    for uv in range(u_cap + 1):
        n_valid = min(d, max(uv - 1, 0))
        vmask[uv] = ((1 << d) - 1) ^ ((1 << (d - n_valid)) - 1)
        total = int(omegas[uv])
        if uv >= 2:
            a = (uv - 2) & (chunk - 1)
            c0 = (uv - 2) >> t
            for j in range(1, n_valid + 1):
                rel = -((a - j + 1) >> t)
                e = min(t + 1 + c0 - rel, 64 - p)
                total += 1 << (shift - e)
        weight[uv] = _as_int64(total)
    rho_exp = np.zeros(EXPONENT_AXIS, dtype=np.int64)
    for e in range(t + 1, 64 - p + 1):
        rho_exp[e] = _as_int64(1 << (shift - e))
    for array in (vmask, weight, rho_exp):
        array.setflags(write=False)
    return _RegisterPlan(
        slot_mask=(1 << spacing) - 1,
        halves=tuple(halves),
        vmask=vmask,
        weight=weight,
        rho_exp=rho_exp,
    )


@lru_cache(maxsize=32)
def _omega_vector(params: ExaLogLogParams):
    """``omega'(u)`` as an int64 mod-2**64 vector (generic path's weights)."""
    omegas = omega_scaled_table(params)
    vector = np.fromiter(
        (_as_int64(value) for value in omegas), dtype=np.int64, count=len(omegas)
    )
    vector.setflags(write=False)
    return vector


def _window_loop(mat, key, hist, occupied, params, alpha, beta_t):
    """Generic window accumulation: one vectorised pass per offset ``j``.

    Covers parameterisations outside the LUT plan (tiny or huge ``d``,
    ``t = 0``, ``p > 18``). ``hist`` and the set-count matrices use the
    transposed ``(n_exp, rows)`` layout; alpha contributions collapse
    into one mod-``2**64`` int64 einsum per offset.
    """
    d = params.d
    shift = 64 - params.p
    phis = phi_table(params)
    n_exp, rows = hist.shape
    dtype = mat.dtype.type
    for j in range(1, min(d, n_exp - 2) + 1):
        bits = (mat >> dtype(d - j)) & dtype(1)
        sets = np.bincount(
            key, weights=bits.ravel(), minlength=rows * n_exp
        ).reshape(n_exp, rows).astype(np.int64)
        rho = np.zeros(n_exp, dtype=np.int64)
        for uv in occupied:
            if uv - j < 1:
                continue
            e = phis[uv - j]
            rho[uv] = _as_int64(1 << (shift - e))
            beta_t[e] += sets[uv]
        # alpha += sum_u rho_u * (hist_u - sets_u), exact modulo 2**64
        alpha += np.einsum("uk,u->k", hist, rho)
        alpha -= np.einsum("uk,u->k", sets, rho)


class _ChunkWorkspace:
    """Reusable scratch buffers for the per-chunk extraction passes.

    Every elementwise pass writes into a preallocated buffer (``out=``),
    so processing a large matrix allocates once instead of churning
    multi-megabyte temporaries on every chunk.
    """

    __slots__ = ("capacity", "gathered", "i32", "key", "m", "scratch", "window_beta")

    def __init__(self, rows: int, m: int, dtype) -> None:
        self.capacity = rows
        self.m = m
        self.i32 = np.empty((4, rows, m), dtype=dtype)
        self.key = np.empty((rows, m), dtype=np.int64)
        self.gathered = np.empty(rows * m, dtype=np.float64)
        self.scratch = np.empty((rows, m), dtype=dtype)
        self.window_beta = np.empty((EXPONENT_AXIS, rows), dtype=np.int64)

    def views(self, rows: int):
        """Buffer views trimmed to the (possibly short, final) chunk."""
        return (
            self.i32[:, :rows],
            self.key[:rows],
            self.gathered[: rows * self.m],
            self.scratch[:rows],
            self.window_beta[:, :rows],
        )


_WORKSPACE_LOCAL = threading.local()


def _chunk_workspace(rows: int, m: int, dtype) -> _ChunkWorkspace:
    """Thread-cached :class:`_ChunkWorkspace`, reused across calls.

    Query serving solves many batches with the same sketch geometry, so
    the multi-megabyte scratch buffers are cached per thread (keyed on
    shape/dtype compatibility) instead of reallocated per
    :func:`register_coefficients` call. Buffers are trimmed via
    :meth:`_ChunkWorkspace.views`, so a larger cached capacity serves
    smaller batches unchanged.
    """
    dtype = np.dtype(dtype)
    cached = getattr(_WORKSPACE_LOCAL, "workspace", None)
    if (
        cached is None
        or cached.m != m
        or cached.i32.dtype != dtype
        or cached.capacity < rows
    ):
        cached = _ChunkWorkspace(rows, m, dtype)
        _WORKSPACE_LOCAL.workspace = cached
    return cached


def release_batch_workspaces() -> None:
    """Drop this thread's cached chunk workspace (frees the buffers)."""
    _WORKSPACE_LOCAL.workspace = None


def _chunk_coefficients(mat, params, plan, alpha_out, beta_t, workspace):
    """Algorithm 3 for one row chunk (cache-resident working set)."""
    d = params.d
    dtype = mat.dtype.type
    rows = mat.shape[0]
    i32, key2d, gathered, scratch, window_beta = workspace.views(rows)
    u, masked, align, half = i32
    np.right_shift(mat, dtype(d), out=u)
    u_hi = int(u.max())
    n_exp = u_hi + 1
    # Transposed (u value)-major keys: per-u slices of the histogram and
    # of the window set-count matrices are contiguous rows.
    np.multiply(u, np.int64(rows), out=key2d)
    np.add(key2d, np.arange(rows, dtype=np.int64)[:, None], out=key2d)
    key = key2d.ravel()
    hist = np.bincount(key, minlength=rows * n_exp).reshape(n_exp, rows)
    occupied = np.flatnonzero(hist.any(axis=1)).tolist()
    phis = phi_table(params)
    for uv in occupied:
        if uv >= 1:
            beta_t[phis[uv]] += hist[uv]

    if plan is not None:
        # One einsum folds the u-term omega mass and every valid window
        # position's rho mass; set bits are subtracted via the window
        # beta counts below (all arithmetic exact modulo 2**64).
        alpha_out[:] = np.einsum("uk,u->k", hist, plan.weight[:n_exp])
        if d and u_hi >= 2:
            window_beta[:] = 0
            np.take(plan.vmask, u, out=masked)
            np.bitwise_and(mat, masked, out=masked)
            np.subtract(u, dtype(2), out=align)
            np.bitwise_and(align, dtype((1 << params.t) - 1), out=align)
            deep = [uv for uv in occupied if uv >= 2]
            mask = np.int64(plan.slot_mask)
            for j0, width, words in plan.halves:
                if j0 + 1 > u_hi - 1:
                    break  # no register has valid bits this deep
                np.right_shift(masked, dtype(d - j0 - width), out=half)
                np.bitwise_and(half, dtype((1 << width) - 1), out=half)
                np.left_shift(align, dtype(width), out=scratch)
                np.bitwise_or(scratch, half, out=scratch)
                idx = scratch.ravel()
                for lut, slots in words:
                    np.take(lut, idx, out=gathered)
                    packed = np.bincount(
                        key, weights=gathered, minlength=rows * n_exp
                    ).reshape(n_exp, rows).astype(np.int64)
                    for offset, e_map in slots:
                        counts = (packed >> np.int64(offset)) & mask
                        for uv in deep:
                            e = int(e_map[uv])
                            if e >= 0:
                                window_beta[e] += counts[uv]
            alpha_out -= np.einsum("ek,e->k", window_beta, plan.rho_exp)
            beta_t += window_beta
    else:
        alpha_out[:] = np.einsum("uk,u->k", hist, _omega_vector(params)[:n_exp])
        if d and u_hi >= 2:
            _window_loop(mat, key, hist, occupied, params, alpha_out, beta_t)


def register_coefficients(
    matrix, params: ExaLogLogParams
) -> BatchCoefficients:
    """Vectorised Algorithm 3 over a ``(k, m)`` register matrix.

    ``matrix`` holds one sketch's register values per row (any integer
    dtype; ``params.register_bits`` must fit int64). Produces, per row,
    exactly the coefficients of the scalar
    :func:`repro.core.mlestimation.compute_coefficients`. Rows are
    processed in cache-sized chunks (the same trick as the bulk-ingest
    fold); results are independent per row, so chunking is invisible.
    """
    mat = np.ascontiguousarray(matrix)
    if mat.ndim != 2:
        raise ValueError(f"expected a (k, m) register matrix, got shape {mat.shape}")
    if params.register_bits > 63:
        raise ValueError(
            f"register width {params.register_bits} exceeds the int64 fast path"
        )
    # int32 halves the memory traffic of the bit-op passes and covers
    # every named configuration (ELL(2, 20) registers are 28 bits).
    target_dtype = np.int32 if params.register_bits <= 31 else np.int64
    if mat.dtype != target_dtype:
        mat = mat.astype(target_dtype)
    k, m = mat.shape
    if m != params.m:
        raise ValueError(f"expected {params.m} registers per row, got {m}")
    if k == 0:
        return BatchCoefficients(
            np.zeros(0),
            np.zeros(0, dtype=_U64),
            np.zeros((0, EXPONENT_AXIS), dtype=np.int64),
        )
    plan = _register_plan(params)
    # alpha' accumulates in int64 with two's-complement wrap-around —
    # bit-identical to uint64 arithmetic modulo 2**64.
    alpha_i64 = np.empty(k, dtype=np.int64)
    beta_t = np.zeros((EXPONENT_AXIS, k), dtype=np.int64)
    chunk_rows = min(max(1, _CHUNK_ELEMENTS // m), k)
    workspace = _chunk_workspace(chunk_rows, m, mat.dtype)
    for start in range(0, k, chunk_rows):
        stop = min(start + chunk_rows, k)
        _chunk_coefficients(
            mat[start:stop],
            params,
            plan,
            alpha_i64[start:stop],
            beta_t[:, start:stop],
            workspace,
        )
    alpha_u64 = alpha_i64.view(_U64)
    alpha = np.ldexp(alpha_u64.astype(np.float64), -(64 - params.p))
    return BatchCoefficients(
        alpha=alpha, alpha_scaled=alpha_u64, beta=np.ascontiguousarray(beta_t.T)
    )


# -- Algorithm 8, simultaneous -------------------------------------------------


def solve_ml_equations(alpha, beta) -> BatchMLSolution:
    """Iterate Algorithm 8 on all rows of ``(alpha, beta)`` at once.

    ``alpha`` is float64 ``(k,)``, ``beta`` an integer ``(k, u)`` count
    matrix keyed by exponent (column index). Per row, every floating-point
    operation replays the scalar :func:`repro.estimation.newton.solve_ml_equation`
    exactly — multiplication-only recursions (20)-(22)/(30), Lemma B.3
    starting point, monotone Newton updates with per-row convergence — so
    ``nu``, ``iterations`` and ``saturated`` are bit-identical to solving
    each row alone.
    """
    alpha = np.ascontiguousarray(alpha, dtype=np.float64)
    beta = np.ascontiguousarray(beta, dtype=np.int64)
    if beta.ndim != 2:
        raise ValueError(f"expected a (k, u) beta matrix, got shape {beta.shape}")
    k, n_exp = beta.shape
    if alpha.shape != (k,):
        raise ValueError(f"alpha shape {alpha.shape} does not match {k} beta rows")
    if np.any(alpha < 0.0):
        value = float(alpha[np.flatnonzero(alpha < 0.0)[0]])
        raise ValueError(f"alpha must be non-negative, got {value}")
    if np.any(beta < 0):
        row, col = np.argwhere(beta < 0)[0]
        raise ValueError(
            f"beta[{int(col)}] must be non-negative, got {int(beta[row, col])}"
        )

    if _metrics.enabled():
        _SOLVE_BATCH_SIZE.observe(float(k))

    nu = np.zeros(k)
    iterations = np.zeros(k, dtype=np.int64)
    nonzero = beta > 0
    has_counts = nonzero.any(axis=1)
    saturated = has_counts & (alpha == 0.0)
    solving = has_counts & ~saturated
    nu[saturated] = math.inf
    if not solving.any():
        return BatchMLSolution(nu=nu, iterations=iterations, saturated=saturated)

    u_min = nonzero.argmax(axis=1).astype(np.int64)
    u_max = np.int64(n_exp - 1) - nonzero[:, ::-1].argmax(axis=1).astype(np.int64)

    # sigma sums in ascending-exponent order, matching the scalar solver
    # (zero-count terms add exactly 0.0 and change nothing).
    sigma0 = np.zeros(k)
    sigma1 = np.zeros(k)
    for col in range(n_exp):
        counts = beta[:, col].astype(np.float64)
        sigma0 += counts
        sigma1 += counts * math.ldexp(1.0, -col)

    scale = np.ldexp(1.0, u_max.astype(np.int32))
    sigma1 = sigma1 * scale
    a_scaled = alpha * scale
    with np.errstate(all="ignore"):
        x = sigma1 / a_scaled
    # Lemma B.3 lower bound; math.* keeps bit-identity with the scalar path.
    for i in np.flatnonzero(solving & (u_min < u_max)).tolist():
        x[i] = math.expm1(
            math.log1p(float(x[i])) * (float(sigma0[i]) / float(sigma1[i]))
        )

    span = u_max - u_min
    offsets = np.arange(max(int(span[solving].max()) + 1, 1), dtype=np.int64)
    columns = u_max[:, None] - offsets[None, :]
    beta_off = np.take_along_axis(beta, np.clip(columns, 0, n_exp - 1), axis=1)
    beta_off[columns < u_min[:, None]] = 0
    beta_off = beta_off.astype(np.float64)

    active = solving.copy()
    x_cur = np.where(active, x, 0.0)
    while True:
        iterations[active] += 1
        if int(iterations.max()) > MAX_ITERATIONS:
            row = int(np.flatnonzero(iterations > MAX_ITERATIONS)[0])
            counts = {
                int(col): int(beta[row, col])
                for col in np.flatnonzero(beta[row]).tolist()
            }
            raise ArithmeticError(
                "Newton iteration failed to converge; this indicates a bug "
                f"(alpha={float(alpha[row])!r}, beta={counts!r})"
            )
        # Sum phi (17) and psi (28) with the recursions (20)-(22), (30).
        # Offsets beyond a row's span carry zero counts, so running every
        # row to the longest active span adds exact 0.0 terms — phi and
        # psi stay bit-identical to the scalar per-row loop without any
        # per-offset masking (lam/eta/y drift past the span is unread).
        lam = np.ones(k)
        eta = np.zeros(k)
        y = x_cur.copy()
        phi_val = beta_off[:, 0].copy()
        psi_val = np.zeros(k)
        with np.errstate(all="ignore"):
            o_hi = int(span[active].max())
            for o in range(1, o_hi + 1):
                z = 2.0 / (2.0 + y)
                lam = lam * z
                eta = eta * (2.0 - z) + (1.0 - z)
                counts = beta_off[:, o]
                phi_val = phi_val + counts * lam
                psi_val = psi_val + counts * lam * eta
                if o < o_hi:
                    y = y * (y + 2.0)
            x_scaled = a_scaled * x_cur
            at_root = active & (phi_val <= x_scaled)
            x_next = x_cur * (1.0 + (phi_val - x_scaled) / (psi_val + x_scaled))
            advanced = active & ~at_root & (x_next > x_cur)
        x_cur = np.where(advanced, x_next, x_cur)
        active = advanced
        if not active.any():
            break

    # nu = 2**u_max * log1p(x); math.log1p for bit-identity with the scalar.
    for i in np.flatnonzero(solving).tolist():
        nu[i] = (2.0 ** int(u_max[i])) * math.log1p(float(x_cur[i]))
    if _metrics.enabled():
        values, counts = np.unique(iterations[solving], return_counts=True)
        for value, count in zip(values.tolist(), counts.tolist()):
            _NEWTON_ITERATIONS.observe(float(value), count=int(count))
    return BatchMLSolution(nu=nu, iterations=iterations, saturated=saturated)


# -- end-to-end estimate paths -------------------------------------------------


def estimate_registers(
    matrix, params: ExaLogLogParams, bias_correction: bool = True
) -> np.ndarray:
    """Batched ML estimates for a ``(k, m)`` register matrix.

    Bit-identical to calling the scalar Algorithm 3 + Algorithm 8 +
    Eq. (4) pipeline on every row.
    """
    from repro.core.mlestimation import bias_correction_factor

    coefficients = register_coefficients(matrix, params)
    solution = solve_ml_equations(coefficients.alpha, coefficients.beta)
    estimates = params.m * solution.nu
    if bias_correction:
        factor = bias_correction_factor(params)
        estimates = np.where(estimates > 0.0, estimates * factor, estimates)
    return estimates


def estimate_register_stacks(rows, params, bias_correction: bool = True) -> np.ndarray:
    """Batched estimates for same-parameter register rows from anywhere.

    ``rows`` is an iterable of length-``m`` register vectors — Python
    lists, ndarrays, or ``np.memmap`` views straight over *another
    process's* register files (the concurrent-reader query path). Rows
    are only ever read: they are gathered into one fresh extraction-dtype
    matrix, so read-only and foreign-mmap inputs are safe, and the
    estimates are bit-identical to per-row scalar estimation.
    """
    rows = list(rows)
    dtype = np.int32 if params.register_bits <= 31 else np.int64
    matrix = np.empty((len(rows), params.m), dtype=dtype)
    for position, row in enumerate(rows):
        matrix[position] = row
    return estimate_registers(matrix, params, bias_correction)


def batch_estimate_sketches(sketches, bias_correction: bool = True) -> list[float]:
    """Estimates for a mixed sketch collection via one simultaneous solve.

    Accepts :class:`~repro.core.exaloglog.ExaLogLog` (and subclasses that
    inherit its ML ``estimate``) plus :class:`~repro.core.sparse.SparseExaLogLog`
    in either mode; dense register rows are stacked per parameterisation
    into matrices for the vectorised Algorithm 3, sparse groups contribute
    their Algorithm 7 token coefficients, and every row is solved in one
    :func:`solve_ml_equations` call. Anything unbatchable (overridden
    estimators, register widths beyond int64) falls back to its own
    ``estimate()``. Results are bit-identical to per-sketch estimation.
    """
    from repro.backends.bulk import supports_int64_registers
    from repro.core.exaloglog import ExaLogLog
    from repro.core.mlestimation import bias_correction_factor
    from repro.core.sparse import SparseExaLogLog
    from repro.core.token import token_coefficients

    results = [0.0] * len(sketches)
    dense_groups: dict[int, list] = {}  # id(params) -> [params, (i, sketch)...]
    token_rows: list = []
    # Parameter objects are interned (make_params caches), so batchability
    # resolves through one id()-keyed dict probe per sketch.
    batchable: dict[tuple, bool] = {}
    for i, sketch in enumerate(sketches):
        target = sketch
        if isinstance(target, SparseExaLogLog):
            if target.is_sparse:
                alpha_value, beta_counts = token_coefficients(
                    target._tokens, target.v
                )
                token_rows.append((i, alpha_value, beta_counts))
                continue
            target = target._dense
        if isinstance(target, ExaLogLog):
            params = target._params
            key = (type(target), id(params))
            ok = batchable.get(key)
            if ok is None:
                ok = batchable[key] = (
                    type(target).estimate is ExaLogLog.estimate
                    and supports_int64_registers(params)
                )
            if ok:
                group = dense_groups.get(id(params))
                if group is None:
                    group = dense_groups[id(params)] = [params]
                group.append((i, target))
                continue
        results[i] = sketch.estimate()

    total = sum(len(group) - 1 for group in dense_groups.values()) + len(token_rows)
    if not total:
        return results
    alpha = np.empty(total)
    beta = np.zeros((total, EXPONENT_AXIS), dtype=np.int64)
    scale = np.empty(total)
    bias = np.ones(total)
    out_index = np.empty(total, dtype=np.int64)
    row = 0
    for group in dense_groups.values():
        params = group[0]
        members = group[1:]
        count = len(members)
        # Assemble straight into the extraction dtype (row assignment
        # narrows the cached int64 arrays on the fly).
        matrix = np.empty(
            (count, params.m),
            dtype=np.int32 if params.register_bits <= 31 else np.int64,
        )
        for offset, (_, sketch) in enumerate(members):
            matrix[offset] = sketch.registers_array()
        coefficients = register_coefficients(matrix, params)
        alpha[row : row + count] = coefficients.alpha
        beta[row : row + count] = coefficients.beta
        scale[row : row + count] = params.m
        if bias_correction:
            bias[row : row + count] = bias_correction_factor(params)
        out_index[row : row + count] = [i for i, _ in members]
        row += count
    for i, alpha_value, beta_counts in token_rows:
        alpha[row] = alpha_value
        for exponent, count in beta_counts.items():
            beta[row, exponent] = count
        scale[row] = 1.0
        out_index[row] = i
        row += 1

    solution = solve_ml_equations(alpha, beta)
    estimates = scale * solution.nu
    estimates = np.where(estimates > 0.0, estimates * bias, estimates)
    for position, i in enumerate(out_index.tolist()):
        results[i] = float(estimates[position])
    return results


def batch_estimates_by_key(sketches) -> "dict[bytes, float]":
    """All estimates of a keyed sketch mapping in one simultaneous solve.

    The shared implementation behind every keyed read surface
    (:meth:`repro.aggregate.DistinctCountAggregator.estimates`, the
    store readers, the windowed adapter): stack every sketch through
    :func:`batch_estimate_sketches` and zip the estimates back onto the
    mapping's keys, preserving its iteration order.
    """
    if not sketches:
        return {}
    keys = list(sketches)
    values = batch_estimate_sketches([sketches[key] for key in keys])
    return dict(zip(keys, values))


def batch_top(sketches, count: int) -> "list[tuple[bytes, float]]":
    """The ``count`` largest-estimate entries of a keyed sketch mapping.

    Selects via ``np.argpartition`` on the batched estimate vector —
    O(groups) instead of a full sort — with ties broken by the mapping's
    iteration order, exactly like a stable descending sort prefix.
    """
    if count <= 0 or not sketches:
        return []
    keys = list(sketches)
    values = np.asarray(batch_estimate_sketches([sketches[key] for key in keys]))
    total = len(keys)
    if count >= total:
        order = np.argsort(-values, kind="stable")
    else:
        # k-th largest value, then all strictly above it plus the
        # earliest-iterated ties — matching stable descending sort.
        threshold = values[np.argpartition(-values, count - 1)[:count]].min()
        above = np.flatnonzero(values > threshold)
        ties = np.flatnonzero(values == threshold)[: count - len(above)]
        chosen = np.concatenate((above, ties))
        order = chosen[np.argsort(-values[chosen], kind="stable")]
    return [(keys[i], float(values[i])) for i in order.tolist()]
