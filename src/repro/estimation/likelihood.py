"""Direct evaluation of the shared log-likelihood shape (paper Eq. (15)).

These helpers exist so tests and ablation benches can verify the Newton
solver against brute-force evaluation: the solver's root must maximize
:func:`log_likelihood` and zero :func:`log_likelihood_derivative`.
"""

from __future__ import annotations

import math
from typing import Mapping


def log_likelihood(nu: float, alpha: float, beta: Mapping[int, int]) -> float:
    """``ln L(nu) = -nu alpha + sum_u beta_u ln(1 - exp(-nu / 2**u))``."""
    if nu < 0.0:
        raise ValueError("nu must be non-negative")
    if nu == 0.0:
        return 0.0 if not any(beta.values()) else -math.inf
    total = -nu * alpha
    for u, count in beta.items():
        if count:
            z = nu * 2.0 ** (-u)
            total += count * math.log(-math.expm1(-z))
    return total


def log_likelihood_derivative(nu: float, alpha: float, beta: Mapping[int, int]) -> float:
    """``d/d nu ln L = -alpha + sum_u beta_u 2**-u / (exp(nu 2**-u) - 1)``."""
    if nu <= 0.0:
        raise ValueError("nu must be positive")
    total = -alpha
    for u, count in beta.items():
        if count:
            scale = 2.0 ** (-u)
            z = nu * scale
            if z < 700.0:  # beyond this the term underflows to zero
                total += count * scale / math.expm1(z)
    return total


def f_transformed(x: float, alpha: float, beta: Mapping[int, int]) -> float:
    """The transformed function ``f(x)`` of Eq. (18) (for Lemma B.2 tests).

    ``f(x) = alpha 2**u_max x - sum_j beta_{u_max - j} 2**j x / ((1+x)**(2**j) - 1)``.
    """
    if x < 0.0:
        raise ValueError("x must be non-negative")
    active = [u for u, c in beta.items() if c > 0]
    if not active:
        return 0.0
    u_max = max(active)
    total = alpha * 2.0 ** u_max * x
    for u, count in beta.items():
        if not count:
            continue
        j = u_max - u
        if x == 0.0:
            total -= count  # limit of 2**j x / ((1+x)**(2**j) - 1) as x -> 0
        elif (2 ** j) * math.log1p(x) < 700.0:
            total -= count * (2.0 ** j) * x / ((1.0 + x) ** (2 ** j) - 1.0)
        # else: the denominator overflows and the term vanishes.
    return total
