"""Robust Newton solver for the ML equation (paper Appendix A, Alg. 8).

The log-likelihood of every sketch in this library — ExaLogLog registers
(Eq. (15)), hash tokens (Eq. (26)), HyperLogLog and PCSA states — has the
common shape

    ln L(nu) = -nu * alpha + sum_u beta_u * ln(1 - exp(-nu / 2**u)),

where ``nu = n / m`` is the per-register Poisson rate, ``alpha > 0`` and the
``beta_u`` are non-negative integers. Substituting
``x = exp(nu / 2**u_max) - 1`` turns the ML equation into ``f(x) = 0`` with
``f`` strictly increasing and concave for ``x >= 0`` (Lemma B.2), so Newton
iteration from the Jensen-inequality starting point of Lemma B.3 converges
monotonically. All register exponents are powers of two, which allows the
recursions (20)-(22) and (28)-(30) to evaluate ``f`` with multiplications
only — this solver is a faithful transcription of Algorithm 8.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

#: Hard iteration cap. The paper reports the Newton iteration never exceeded
#: 10 in any experiment; we allow slack and assert the claim in tests.
MAX_ITERATIONS = 64


@dataclass(frozen=True)
class MLSolution:
    """Result of an ML equation solve."""

    nu: float
    """Estimated Poisson rate per register (``n_hat / m``)."""

    iterations: int
    """Number of Newton iterations performed."""

    saturated: bool = False
    """True when alpha was zero (all registers saturated, estimate infinite)."""


def solve_ml_equation(alpha: float, beta: Mapping[int, int]) -> MLSolution:
    """Solve ``d/d nu ln L = 0`` for the likelihood shape above.

    Parameters
    ----------
    alpha:
        The linear coefficient (Algorithm 3 / Algorithm 7). Must be >= 0.
    beta:
        Mapping from exponent ``u`` to the non-negative count ``beta_u``.
        Exponents with zero count may be present and are ignored.

    Returns
    -------
    MLSolution with ``nu`` equal to ``m * 2**u_max * ln(1 + x_root) / m``
    (i.e. already divided by m — the caller multiplies by its m).
    """
    if alpha < 0.0:
        raise ValueError(f"alpha must be non-negative, got {alpha}")

    sigma0 = 0.0
    sigma1 = 0.0
    u_min = -1
    u_max = 0
    for u in sorted(beta):
        count = beta[u]
        if count < 0:
            raise ValueError(f"beta[{u}] must be non-negative, got {count}")
        if count > 0:
            if u_min < 0:
                u_min = u
            u_max = u
            sigma0 += count
            sigma1 += count * 2.0 ** (-u)

    if u_min < 0:
        # All beta_u zero: every register is in its initial state.
        return MLSolution(nu=0.0, iterations=0)
    if alpha == 0.0:
        # All registers saturated; only realistic far beyond the exa-scale.
        return MLSolution(nu=math.inf, iterations=0, saturated=True)

    beta_dense = [0] * (u_max - u_min + 1)
    for u, count in beta.items():
        if count > 0:
            beta_dense[u_max - u] = count

    sigma1 *= 2.0 ** u_max
    a_scaled = alpha * 2.0 ** u_max

    x = sigma1 / a_scaled
    if u_min < u_max:
        # Lemma B.3 lower bound; for u_min == u_max, x is already the root.
        x = math.expm1(math.log1p(x) * (sigma0 / sigma1))

    iterations = 0
    while True:
        iterations += 1
        if iterations > MAX_ITERATIONS:
            raise ArithmeticError(
                "Newton iteration failed to converge; this indicates a bug "
                f"(alpha={alpha!r}, beta={dict(beta)!r})"
            )
        # Sum phi (17) and psi (28) with the recursions (20)-(22), (30).
        lam = 1.0
        eta = 0.0
        y = x
        u = u_max
        phi_val = float(beta_dense[0])
        psi_val = 0.0
        while u > u_min:
            u -= 1
            z = 2.0 / (2.0 + y)
            lam *= z
            eta = eta * (2.0 - z) + (1.0 - z)
            count = beta_dense[u_max - u]
            if count:
                phi_val += count * lam
                psi_val += count * lam * eta
            if u <= u_min:
                break
            y = y * (y + 2.0)

        x_scaled = a_scaled * x
        if phi_val <= x_scaled:
            # f(x) >= 0: we are at (or numerically past) the root.
            break
        x_old = x
        x = x * (1.0 + (phi_val - x_scaled) / (psi_val + x_scaled))
        if x <= x_old:
            # Numerically converged.
            x = x_old
            break

    return MLSolution(nu=(2.0 ** u_max) * math.log1p(x), iterations=iterations)


def solve_ml_equation_bisection(
    alpha: float, beta: Mapping[int, int], tolerance: float = 1e-12
) -> float:
    """Reference solver via bisection on ``d/d nu ln L`` (tests/ablation).

    Slow but independent of Algorithm 8's algebra; used to validate the
    Newton solver and by the solver ablation bench.
    """
    items = [(u, c) for u, c in beta.items() if c > 0]
    if not items:
        return 0.0
    if alpha <= 0.0:
        return math.inf

    def derivative(nu: float) -> float:
        # d/d nu ln L = -alpha + sum beta_u * 2**-u / (exp(nu * 2**-u) - 1)
        total = -alpha
        for u, count in items:
            scale = 2.0 ** -u
            z = nu * scale
            if z < 700.0:  # beyond this the term underflows to zero
                total += count * scale / math.expm1(z)
        return total

    low = 1e-300
    high = 1.0
    while derivative(high) > 0.0:
        high *= 2.0
        if high > 1e300:
            return math.inf
    for _ in range(4096):
        mid = 0.5 * (low + high)
        if derivative(mid) > 0.0:
            low = mid
        else:
            high = mid
        if high - low <= tolerance * max(1.0, low):
            break
    return 0.5 * (low + high)
