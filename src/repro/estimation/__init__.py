"""Shared statistical estimation machinery (paper Sec. 3 and Appendix A)."""

from repro.estimation.likelihood import (
    f_transformed,
    log_likelihood,
    log_likelihood_derivative,
)
from repro.estimation.newton import (
    MAX_ITERATIONS,
    MLSolution,
    solve_ml_equation,
    solve_ml_equation_bisection,
)

__all__ = [
    "MAX_ITERATIONS",
    "MLSolution",
    "f_transformed",
    "log_likelihood",
    "log_likelihood_derivative",
    "solve_ml_equation",
    "solve_ml_equation_bisection",
]
