"""Shared statistical estimation machinery (paper Sec. 3 and Appendix A)."""

from repro.estimation.batch import (
    BatchCoefficients,
    BatchMLSolution,
    batch_estimate_sketches,
    batch_estimates_by_key,
    batch_top,
    estimate_register_stacks,
    estimate_registers,
    register_coefficients,
    release_batch_workspaces,
    solve_ml_equations,
)
from repro.estimation.likelihood import (
    f_transformed,
    log_likelihood,
    log_likelihood_derivative,
)
from repro.estimation.newton import (
    MAX_ITERATIONS,
    MLSolution,
    solve_ml_equation,
    solve_ml_equation_bisection,
)

__all__ = [
    "MAX_ITERATIONS",
    "BatchCoefficients",
    "BatchMLSolution",
    "MLSolution",
    "batch_estimate_sketches",
    "batch_estimates_by_key",
    "batch_top",
    "estimate_register_stacks",
    "estimate_registers",
    "f_transformed",
    "log_likelihood",
    "log_likelihood_derivative",
    "register_coefficients",
    "release_batch_workspaces",
    "solve_ml_equation",
    "solve_ml_equation_bisection",
    "solve_ml_equations",
]
