"""Estimate distinct counts at the EXA-scale — in seconds, on a laptop.

ExaLogLog's namesake claim is an operating range up to ~2**64 ≈ 1.8e19.
Nobody can insert 10**19 elements, but the paper's Sec. 5.1 simulation
methodology makes the *statistics* of such a stream exactly reproducible:
only first-occurrence events of (register, update value) pairs matter, and
their waiting times are geometric. This example simulates one stream of
TEN QUINTILLION distinct elements through a 896-byte sketch and prints the
ML and martingale estimates along the way.

Run:  python examples/exascale_simulation.py
"""

import time

from repro.core.params import make_params
from repro.simulation import (
    filter_state_changes,
    numpy_generator,
    replay,
    simulate_event_schedule,
)
from repro.theory import theoretical_relative_rmse


def main() -> None:
    params = make_params(2, 20, 8)  # 896 bytes
    n_max = 1.0e19
    checkpoints = [10.0 ** e for e in range(0, 20)]

    start = time.perf_counter()
    rng = numpy_generator(2026, 0)
    schedule = simulate_event_schedule(params, n_max, rng, n_exact=1 << 17)
    changes = filter_state_changes(schedule, params)
    result = replay(changes, params, checkpoints)
    elapsed = time.perf_counter() - start

    theory = theoretical_relative_rmse(2, 20, 8)
    print(f"sketch                : {params} = {params.dense_bytes} bytes")
    print(f"simulated events      : {len(schedule)} first occurrences, "
          f"{len(changes)} state changes")
    print(f"simulation wall time  : {elapsed:.2f} s for n = 1e19 distinct elements")
    print(f"theoretical std error : {theory:.2%}\n")
    print(f"{'true n':>10} {'ML estimate':>14} {'error':>8} {'martingale':>14} {'error':>8}")
    print("-" * 60)
    for n, ml, mart in zip(checkpoints, result.ml_estimates,
                           result.martingale_estimates):
        print(
            f"{n:>10.0e} {ml:>14.4g} {ml / n - 1:>+8.2%} "
            f"{mart:>14.4g} {mart / n - 1:>+8.2%}"
        )
    print(f"\n(max Newton iterations across all estimates: "
          f"{result.newton_iterations_max} — the paper reports <= 10)")


if __name__ == "__main__":
    main()
