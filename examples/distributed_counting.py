"""Distributed distinct counting across shards, with a precision migration.

Scenario (the paper's core motivation, Sec. 1): events for the same user
arrive at many ingestion shards; each shard keeps a small ExaLogLog, and
the coordinator merges them for a global COUNT(DISTINCT user). Later the
fleet migrates to a cheaper precision without losing mergeability with the
old records (reducibility, Sec. 4.2).

Run:  python examples/distributed_counting.py
"""

from repro import ExaLogLog
from repro.baselines import ExactCounter
from repro.workloads import shard_stream


def main() -> None:
    total_users = 200_000
    shards = 16

    partitions = shard_stream(total_users, shards, overlap=0.15, seed=7)

    # Each shard counts locally...
    shard_sketches = []
    exact = ExactCounter()
    for partition in partitions:
        sketch = ExaLogLog(t=2, d=20, p=12)
        for user in partition:
            sketch.add(user)
            exact.add(user)
        shard_sketches.append(sketch)

    # ...and the coordinator merges byte blobs received over the wire.
    blobs = [sketch.to_bytes() for sketch in shard_sketches]
    merged = ExaLogLog.from_bytes(blobs[0])
    for blob in blobs[1:]:
        merged.merge_inplace(ExaLogLog.from_bytes(blob))

    truth = exact.estimate()
    estimate = merged.estimate()
    print(f"shards                : {shards}")
    print(f"bytes per shard       : {len(blobs[0])}")
    print(f"true distinct users   : {truth:.0f}")
    print(f"merged estimate       : {estimate:.1f}  ({estimate / truth - 1:+.2%})")

    # Migration: new shards run at lower precision to save memory. Old
    # records stay mergeable by reducing them to the common parameters.
    new_sketch = ExaLogLog(t=2, d=16, p=10)
    for user_id in range(total_users, total_users + 50_000):
        new_sketch.add(f"user-{user_id}")
        exact.add(f"user-{user_id}")

    combined = merged.merge(new_sketch)  # reduces to (t=2, d=16, p=10)
    truth = exact.estimate()
    estimate = combined.estimate()
    print("\nafter migration to (d=16, p=10):")
    print(f"combined parameters   : {combined.params}")
    print(f"true distinct users   : {truth:.0f}")
    print(f"combined estimate     : {estimate:.1f}  ({estimate / truth - 1:+.2%})")


if __name__ == "__main__":
    main()
