"""Quickstart: the ExaLogLog public API in two minutes.

Run:  python examples/quickstart.py
"""

from repro import ExaLogLog, MartingaleExaLogLog, SparseExaLogLog


def main() -> None:
    # 1. Count distinct elements. ELL(2, 20) is the space-optimal
    #    configuration (28-bit registers, MVP 3.67 — 43 % less memory than
    #    HyperLogLog at equal accuracy). p=10 gives ~1.1 % standard error.
    sketch = ExaLogLog(t=2, d=20, p=10)
    for day in range(7):
        for user in range(10_000):
            sketch.add(f"user-{user}")          # duplicates are free
    print(f"distinct users       : {sketch.estimate():10.1f}  (truth 10000)")
    print(f"memory               : {sketch.register_array_bytes} bytes")

    # 2. Merge partial results (distributed counting). Any sketches with
    #    equal t merge; different d/p are reduced automatically.
    east = ExaLogLog(t=2, d=20, p=10).add_all(f"user-{i}" for i in range(6_000))
    west = ExaLogLog(t=2, d=20, p=10).add_all(f"user-{i}" for i in range(4_000, 10_000))
    both = east | west                           # same as east.merge(west)
    print(f"merged east|west     : {both.estimate():10.1f}  (truth 10000)")

    # 3. Reduce precision losslessly (e.g. before archiving). The result
    #    is identical to having recorded at the lower precision all along.
    archived = sketch.reduce(d=16, p=8)
    print(f"reduced (d=16, p=8)  : {archived.estimate():10.1f}")

    # 4. Serialize: a fixed-size byte string (packed 28-bit registers).
    blob = sketch.to_bytes()
    restored = ExaLogLog.from_bytes(blob)
    assert restored == sketch
    print(f"serialized           : {len(blob)} bytes, round-trips exactly")

    # 5. Martingale estimation: ~20 % lower error for non-distributed use.
    online = MartingaleExaLogLog(t=2, d=16, p=10)
    for user in range(10_000):
        online.add(f"user-{user}")
    print(f"martingale estimate  : {online.estimate():10.1f}")

    # 6. Sparse mode: tiny memory while the count is small, automatic
    #    switch to the dense array at the break-even point.
    sparse = SparseExaLogLog(t=2, d=20, p=10)
    for user in range(50):
        sparse.add(f"user-{user}")
    print(
        f"sparse mode          : {sparse.estimate():10.1f}  "
        f"({sparse.memory_bytes} bytes, sparse={sparse.is_sparse})"
    )


if __name__ == "__main__":
    main()
