"""APPROX_COUNT_DISTINCT ... GROUP BY, sketch-style.

The paper's introduction motivates ExaLogLog with the approximate
distinct-count commands of analytical databases. This example runs the
equivalent of

    SELECT country, APPROX_COUNT_DISTINCT(user_id)
    FROM events GROUP BY country

over two partitions with a shuffle/merge stage, and shows the compressed
serialization (the paper's Sec. 6 future-work feature) for shipping the
aggregation state.

Run:  python examples/groupby_analytics.py
"""

from collections import defaultdict

from repro.aggregate import DistinctCountAggregator
from repro.compression import compress_sketch, decompress_sketch
from repro.core.exaloglog import ExaLogLog
from repro.workloads import zipf_stream


COUNTRIES = ["DE", "AT", "CH", "US", "JP", "BR"]
WEIGHTS = [40, 10, 5, 30, 10, 5]


def synthetic_events(count: int, seed: int):
    """(country, user_id) pairs; user populations differ per country."""
    users = zipf_stream(count, 50_000, exponent=1.1, seed=seed)
    import random

    rng = random.Random(seed)
    for user in users:
        country = rng.choices(COUNTRIES, weights=WEIGHTS)[0]
        yield country, country.encode() + b"/" + user


def main() -> None:
    # Two partitions aggregate independently (e.g. two workers)...
    partition_a = DistinctCountAggregator(t=2, d=20, p=10)
    partition_b = DistinctCountAggregator(t=2, d=20, p=10)
    truth: dict[str, set] = defaultdict(set)

    for country, user in synthetic_events(150_000, seed=1):
        partition_a.add(country, user)
        truth[country].add(user)
    for country, user in synthetic_events(150_000, seed=2):
        partition_b.add(country, user)
        truth[country].add(user)

    # ...then the coordinator merges the aggregation states.
    merged = partition_a.merge(partition_b)

    print(f"{'country':<8} {'approx':>10} {'exact':>10} {'error':>8}")
    print("-" * 40)
    for country in COUNTRIES:
        approx = merged.estimate(country)
        exact = len(truth[country])
        print(f"{country:<8} {approx:>10.0f} {exact:>10} {approx / exact - 1:>+8.2%}")

    print(f"\ngroups: {len(merged)}, total sketch memory: "
          f"{merged.total_memory_bytes()} bytes")

    # Ship a single group's sketch with entropy coding (Sec. 6).
    blob = merged.to_bytes()
    print(f"serialized aggregator: {len(blob)} bytes")
    sketch = ExaLogLog(2, 20, 10)
    for country, user in synthetic_events(50_000, seed=3):
        sketch.add(user)
    plain = sketch.to_bytes()
    compressed = compress_sketch(sketch)
    assert decompress_sketch(compressed) == sketch
    print(
        f"single sketch: plain {len(plain)} bytes -> "
        f"compressed {len(compressed)} bytes "
        f"({1 - len(compressed) / len(plain):.0%} smaller, lossless)"
    )


if __name__ == "__main__":
    main()
