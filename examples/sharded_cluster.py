"""Horizontal sharding: a 4-shard cluster, bit-identical to one store.

The paper's sketches merge *exactly* (register-max, Algorithm 5), which
turns horizontal sharding from an approximation trade-off into plain
bookkeeping: route each group to ``shard_of(key, N)`` and every shard's
sketch sees exactly the hash stream a single store would have fed it.
This example walks the whole lifecycle and checks the strong claim at
each step — not "close", but register-bytes-equal and
estimate-floats-equal against a single reference store:

1. init a 4-shard :class:`~repro.cluster.ShardedStore`;
2. ingest a keyed stream (routed per-group WAL records on each shard);
3. scatter-gather queries through the ``SketchSource`` protocol —
   ``estimates()`` is ONE batched solve over the gathered registers,
   ``top(k)`` an exact re-rank of per-shard partial top-k lists;
4. rebalance 4 → 6 shards: relocated groups ship as whole serialized
   sketches behind cutover fence records (no re-ingest), journaled so a
   crash at any point recovers forward;
5. reopen from disk and verify bit-identity end to end.

Run:  python examples/sharded_cluster.py
"""

import pathlib
import tempfile

import numpy as np

from repro.cluster import ClusterSource, ShardedStore
from repro.store import SketchStore

COUNTRIES = ["DE", "AT", "CH", "US", "JP", "BR", "FR", "IT", "ES", "PL"]


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="sharded_cluster_") as workdir:
        workdir = pathlib.Path(workdir)
        rng = np.random.Generator(np.random.PCG64(7))

        # -- 1. init: 4 shards, each a full SketchStore (own WAL) ----------
        cluster = ShardedStore.open(workdir / "cluster", shards=4, p=10)
        single = SketchStore.open(workdir / "single", p=10)  # the referee
        print(f"initialised {cluster!r}")

        # -- 2. ingest: batches route by shard_of(key, 4) ------------------
        for country in COUNTRIES:
            visitors = rng.integers(
                0, 50_000, size=int(rng.integers(5_000, 40_000)), dtype=np.int64
            )
            cluster.append(f"country:{country}", visitors)
            single.append(f"country:{country}", visitors)
        for status in cluster.status():
            print(
                f"  shard {status.index}: {status.groups} groups, "
                f"{status.wal_records} WAL records"
            )
        print(f"skew {cluster.skew():.2f} (1.0 = perfectly balanced)")

        # -- 3. scatter-gather queries (exact, one batched solve) ----------
        assert cluster.estimates() == single.estimates(), "estimates drifted"
        assert cluster.top(3) == single.top(3), "top-k drifted"
        print("top 3 countries by distinct visitors (cluster == single store):")
        for key, estimate in cluster.top(3):
            print(f"  {key.decode()}\t{estimate:,.1f}")

        # -- 4. rebalance 4 -> 6: ship whole sketches, never re-ingest -----
        result = cluster.rebalance(6)
        print(
            f"rebalanced {result.from_shards} -> {result.to_shards} shards: "
            f"moved {result.moved_groups} groups as "
            f"{result.shipped_bytes:,} serialized sketch bytes"
        )
        assert cluster.estimates() == single.estimates(), "rebalance changed floats"

        # -- 5. reopen from disk: recovery reassembles identical state -----
        cluster.close()
        reopened = ShardedStore.open(workdir / "cluster")
        assert reopened.shards == 6 and reopened.epoch == 1
        assert (
            reopened.to_aggregator().to_bytes() == single.aggregator.to_bytes()
        ), "recovered cluster is not bit-identical to the single store"
        print("recovered cluster state is bit-identical to the single store")

        # A query process needs no ShardedStore at all — ClusterSource
        # scatter-gathers over lock-free per-shard readers.
        with ClusterSource.open(workdir / "cluster", reader=True) as source:
            assert source.estimates() == single.estimates()
            print(f"lock-free {source!r} serves the same floats")

        reopened.close()
        single.close()
        print("OK: sharded cluster == single store, before and after rebalance")


if __name__ == "__main__":
    main()
