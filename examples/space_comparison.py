"""Head-to-head space efficiency on a realistic duplicate-heavy stream.

Feeds the same Zipf-distributed stream (a stand-in for a database column:
a few hot keys, a long tail) to every sketch of the paper's Table 2 suite
and prints estimate, error and size — a miniature live version of Table 2.

Run:  python examples/space_comparison.py
"""

from repro import ExaLogLog, SparseExaLogLog
from repro.baselines import (
    CpcSketch,
    ExactCounter,
    HllCompact4,
    HyperLogLog,
    HyperLogLogLog,
    PCSA,
    SpikeSketch,
    UltraLogLog,
)
from repro.workloads import zipf_stream


def main() -> None:
    sketches = {
        "ExaLogLog(2,20,p=8)": ExaLogLog(2, 20, 8),
        "ExaLogLog(2,24,p=8)": ExaLogLog(2, 24, 8),
        "SparseExaLogLog": SparseExaLogLog(2, 20, 8),
        "UltraLogLog(p=10)": UltraLogLog(10),
        "HyperLogLog(p=11)": HyperLogLog(11),
        "HLL 4-bit(p=11)": HllCompact4(11),
        "HyperLogLogLog(p=11)": HyperLogLogLog(11),
        "PCSA(p=10)": PCSA(10),
        "CPC(p=10)": CpcSketch(10),
        "SpikeSketch(128)": SpikeSketch(128),
        "exact (hash set)": ExactCounter(),
    }

    stream_length = 300_000
    distinct_keys = 80_000
    exact = ExactCounter()
    for key in zipf_stream(stream_length, distinct_keys, exponent=1.1, seed=42):
        exact.add(key)
        for sketch in sketches.values():
            sketch.add(key)

    truth = exact.estimate()
    print(f"stream: {stream_length} elements, {truth:.0f} distinct (Zipf 1.1)\n")
    header = f"{'sketch':<22} {'estimate':>10} {'error':>8} {'memory':>8} {'serialized':>10}"
    print(header)
    print("-" * len(header))
    for name, sketch in sketches.items():
        estimate = sketch.estimate()
        error = estimate / truth - 1.0
        print(
            f"{name:<22} {estimate:>10.0f} {error:>+8.2%} "
            f"{sketch.memory_bytes:>8} {len(sketch.to_bytes()):>10}"
        )


if __name__ == "__main__":
    main()
