"""Metagenomics: distinct k-mer counting on synthetic sequencing reads.

Tools like Dashing and KrakenUniq use HyperLogLog to estimate k-mer
cardinalities (paper Sec. 1 application list). This example runs the same
pipeline with ExaLogLog and shows the space saving at matched accuracy:
an ELL(2, 20) sketch needs ~43 % fewer register bits than 6-bit HLL for
the same standard error.

Run:  python examples/kmer_cardinality.py
"""

from repro import ExaLogLog
from repro.baselines import HyperLogLog
from repro.theory import mvp_hll, mvp_ml_dense
from repro.workloads import canonical_kmers, random_genome, sequencing_reads


def main() -> None:
    genome = random_genome(200_000, seed=11)
    k = 21

    # Ground truth on the genome's own k-mer set.
    truth = len(set(canonical_kmers(genome, k)))

    # Stream reads (5x coverage, 0.1 % sequencing errors) through sketches
    # of comparable byte budgets: ELL(2,20,p=10) takes 3584 bytes for a
    # theoretical 1.13 % standard error; HLL needs p=12 (3072 bytes) and
    # still only reaches 1.62 %.
    ell = ExaLogLog(t=2, d=20, p=10)
    hll = HyperLogLog(p=12)
    read_kmers = 0
    for read in sequencing_reads(genome, read_length=100, coverage=5.0,
                                 error_rate=0.001, seed=12):
        for kmer in canonical_kmers(read, k):
            ell.add(kmer)
            hll.add(kmer)
            read_kmers += 1

    print(f"genome length          : {len(genome)} bp")
    print(f"k-mer stream length    : {read_kmers} ({k}-mers, with duplicates)")
    print(f"distinct k-mers genome : {truth}")
    print("(reads contain a few extra distinct k-mers from sequencing errors)")
    print()
    ell_est = ell.estimate()
    hll_est = hll.estimate_ml()
    print(f"ExaLogLog(2,20,p=10)   : {ell_est:12.1f}  using {ell.register_array_bytes} bytes (theory +-1.13%)")
    print(f"HyperLogLog(p=12)      : {hll_est:12.1f}  using {hll.register_array_bytes} bytes (theory +-1.62%)")
    print()
    saving = 1.0 - mvp_ml_dense(2, 20) / mvp_hll()
    print(f"equal-accuracy space saving (theory, Eq. (3)): {saving:.1%}")
    print(
        "note: at equal byte budgets ExaLogLog would instead give "
        f"{(mvp_hll() / mvp_ml_dense(2, 20)) ** 0.5 - 1:.1%} lower standard error"
    )


if __name__ == "__main__":
    main()
