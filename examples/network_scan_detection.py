"""Port-scan detection with per-source distinct-flow counting.

Network monitors flag sources that contact unusually many distinct
(destination, port) pairs — a classic HyperLogLog application (paper
Sec. 1 cites HLL-based port-scan and DDoS detection). Keeping one small
ExaLogLog per source makes the per-source distinct-flow count cheap; the
43 % space saving translates directly into more tracked sources per
gigabyte of monitor memory.

Run:  python examples/network_scan_detection.py
"""

from repro import ExaLogLog
from repro.workloads import flow_stream


def main() -> None:
    per_source: dict[str, ExaLogLog] = {}
    observed = 0
    for record in flow_stream(
        length=60_000, sources=40, scanner="10.0.0.666", scanner_fraction=0.04, seed=3
    ):
        sketch = per_source.get(record.source)
        if sketch is None:
            # p=8 keeps each source at 896 bytes; plenty for a threshold test.
            sketch = ExaLogLog(t=2, d=20, p=8)
            per_source[record.source] = sketch
        sketch.add(record.flow_key())
        observed += 1

    estimates = {source: sketch.estimate() for source, sketch in per_source.items()}
    # The median is robust against the scanner inflating the baseline.
    ordered = sorted(estimates.values())
    median = ordered[len(ordered) // 2]
    threshold = 8.0 * median

    print(f"flows observed        : {observed}")
    print(f"sources tracked       : {len(per_source)}")
    print(f"memory per source     : {next(iter(per_source.values())).register_array_bytes} bytes")
    print(f"median distinct flows : {median:.1f}   alert threshold: {threshold:.1f}")
    print()
    flagged = {s: e for s, e in estimates.items() if e > threshold}
    for source, estimate in sorted(flagged.items(), key=lambda kv: -kv[1]):
        print(f"ALERT {source:<12} ~{estimate:8.0f} distinct flows (port scan)")
    top_normal = max(
        (e for s, e in estimates.items() if s not in flagged), default=0.0
    )
    print(f"(largest normal source: ~{top_normal:.0f} distinct flows)")
    assert "10.0.0.666" in flagged, "the scanner should have been detected"


if __name__ == "__main__":
    main()
