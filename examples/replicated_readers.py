"""Concurrent reads & WAL-shipping replication for the durable store.

One writer ingests into a :class:`~repro.store.SketchStore`; meanwhile

* a :class:`~repro.store.SnapshotReader` serves queries off the same
  directory without any locking — it maps the newest immutable snapshot
  and tails the WAL up to the durable horizon, and
* a :class:`~repro.store.WalShipper` streams the WAL records into a
  :class:`~repro.store.FollowerStore` replica that applies them
  idempotently by LSN.

Once the follower has caught up to the writer's horizon its register
bytes are *bit-identical* to the writer's — the shipped records are the
same inputs, folded by the same deterministic code, in the same order.
This example checks that equality explicitly (and runs everything in one
process for portability; every piece works identically across
processes — see ``python -m repro.store serve`` / ``replicate``).

Run:  python examples/replicated_readers.py
"""

import tempfile
import pathlib

import numpy as np

from repro.store import FollowerStore, SketchStore, SnapshotReader, WalShipper

COUNTRIES = ["DE", "AT", "CH", "US", "JP", "BR"]


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="replicated_readers_") as workdir:
        workdir = pathlib.Path(workdir)
        rng = np.random.Generator(np.random.PCG64(42))

        # -- the writer: a live ingest process -----------------------------
        writer = SketchStore.open(workdir / "leader", p=10)

        # -- a query process opens the same directory, lock-free -----------
        # (any number of these can run; none of them ever blocks the writer)
        for country in COUNTRIES:
            writer.append_hashes(
                country, rng.integers(0, 1 << 64, size=2_000, dtype=np.uint64)
            )
        reader = SnapshotReader.open(workdir / "leader")
        print(f"reader opened:  generation={reader.generation} "
              f"durable_lsn={reader.durable_lsn} groups={len(reader)}")

        # -- a replica catches up by WAL shipping --------------------------
        follower = FollowerStore.open(workdir / "replica")
        shipper = WalShipper(workdir / "leader")
        result = shipper.sync(follower)
        print(f"replica seeded: snapshot={result.snapshot_installed} "
              f"shipped={result.records_shipped} lsn={result.follower_lsn}")

        # -- the writer keeps going (including a compaction) ---------------
        for round_index in range(3):
            for country in COUNTRIES[: 3 + round_index]:
                writer.append_hashes(
                    country, rng.integers(0, 1 << 64, size=500, dtype=np.uint64)
                )
            if round_index == 1:
                writer.compact()  # readers & shipper follow generations

        # -- readers refresh to the new durable horizon --------------------
        refresh = reader.refresh()
        sync = shipper.sync(follower)
        print(f"reader refresh: +{refresh.records_applied} records, "
              f"generation_changed={refresh.generation_changed}, "
              f"lsn={refresh.durable_lsn}")
        print(f"replica sync:   +{sync.records_shipped} records, "
              f"snapshot={sync.snapshot_installed}, lsn={sync.follower_lsn}")

        # -- consistency: all three views are bit-identical ----------------
        assert reader.durable_lsn == writer.durable_lsn
        assert follower.applied_lsn == writer.durable_lsn
        assert reader.aggregator.to_bytes() == writer.aggregator.to_bytes()
        assert follower.aggregator.to_bytes() == writer.aggregator.to_bytes()
        print("\nwriter == reader == replica (register bytes, every group)\n")

        print(f"{'country':<8} {'writer':>10} {'reader':>10} {'replica':>10}")
        print("-" * 42)
        writer_estimates = writer.estimates()
        reader_estimates = reader.estimates()
        replica_estimates = follower.estimates()
        for key in sorted(writer_estimates):
            name = key.decode()
            print(
                f"{name:<8} {writer_estimates[key]:>10.1f} "
                f"{reader_estimates[key]:>10.1f} {replica_estimates[key]:>10.1f}"
            )

        # Selective replay: one group straight from snapshot + WAL index.
        print(f"\nselective DE estimate: {reader.estimate_group('DE'):.1f} "
              f"(equals full view: "
              f"{reader.estimate_group('DE') == reader.estimate('DE')})")

        reader.close()
        follower.close()
        writer.close()


if __name__ == "__main__":
    main()
