"""Retention analytics with the unified query plane.

Feeds two weeks of synthetic per-day user activity into a sliding-window
distinct counter (one bucket per day) and answers product questions with
``repro.query`` — the same plans that run over stores, readers,
followers, and spilled GROUP BYs:

    DAU / WAU           window 1d, window 7d
    retained users      window 1d  INTERSECT  window 7d ending yesterday
    churned users       window 7d ending yesterday  DIFF  window 1d
    stickiness          DAU / MAU-style ratio from two window plans

Every estimate is validated against exact set arithmetic on the same
event stream.

Run:  python examples/retention_analysis.py
"""

import numpy as np

from repro.query import Scan, SetOp, Window, execute, query
from repro.windowed import SlidingWindowDistinctCounter

DAY = 86400.0
DAYS = 14
POOL = 30_000        # total user base
DAILY_CORE = 6_000   # habitual users, active most days
DAILY_DRIFT = 4_000  # casual users, sampled fresh each day


def simulate_activity(seed: int = 7):
    """(counter, per-day exact sets): core users recur, casual users drift."""
    rng = np.random.Generator(np.random.PCG64(seed))
    core = rng.choice(POOL, size=DAILY_CORE, replace=False)
    counter = SlidingWindowDistinctCounter(
        window=DAYS * DAY, buckets=DAYS, t=2, d=20, p=12
    )
    exact: list[set] = []
    for day in range(DAYS):
        active_core = core[rng.uniform(size=DAILY_CORE) < 0.75]
        casual = rng.choice(POOL, size=DAILY_DRIFT, replace=False)
        users = np.unique(np.concatenate([active_core, casual]))
        exact.append(set(users.tolist()))
        counter.add_batch(users.astype(np.int64), at=day * DAY + DAY / 2)
    return counter, exact


def report(label: str, estimate: float, truth: float) -> None:
    error = abs(estimate / truth - 1.0) if truth else 0.0
    print(f"{label:<28} {estimate:>10.0f} {truth:>10d} {error:>7.2%}")


def main() -> None:
    counter, exact = simulate_activity()
    now = (DAYS - 1) * DAY + DAY / 2  # mid final day
    yesterday_end = now - DAY

    today = exact[-1]
    last_week = set().union(*exact[-8:-1])

    print(f"{'metric':<28} {'approx':>10} {'exact':>10} {'error':>7}")
    print("-" * 58)

    # Simple windows through the string dialect.
    dau = query(counter, "window 1d", now=now).value
    report("DAU (window 1d)", dau, len(today))
    wau = query(counter, "window 7d", now=now).value
    report("WAU (window 7d)", wau, len(set().union(*exact[-7:])))

    # Retention: active today AND active in the preceding week. The two
    # Window subplans each collapse to one merged sketch; the scalar
    # intersection comes from one batched inclusion-exclusion solve.
    retained_plan = SetOp(
        "intersect",
        Window(Scan(), duration=DAY),
        Window(Scan(), duration=7 * DAY, end=yesterday_end),
    )
    retained = execute(retained_plan, counter, now=now).value
    report("retained (1d n prior 7d)", retained, len(today & last_week))

    # Churn: active in the preceding week but NOT today.
    churned = query(
        counter,
        f"window 7d ending {yesterday_end:.0f} diff window 1d",
        now=now,
    ).value
    report("churned (prior 7d \\ 1d)", churned, len(last_week - today))

    stickiness = dau / wau
    exact_stickiness = len(today) / len(set().union(*exact[-7:]))
    report("stickiness (DAU/WAU)", stickiness * 100, round(exact_stickiness * 100))

    # The per-bucket breakdown is just a prefix TopK over the same source.
    print("\nbusiest days (top 3 of 14 buckets):")
    for key, value in query(counter, "top 3", now=now).decoded():
        day = int(key.split(":")[1])
        print(f"  day {day:>2}: ~{value:,.0f} active users")


if __name__ == "__main__":
    main()
