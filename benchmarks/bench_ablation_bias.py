"""Ablation: the first-order bias correction Eq. (4) on/off.

At small precision the raw ML estimate is biased high by ~c/m; Eq. (4)
removes most of it. The bench measures the mean relative error with and
without the correction at p = 4 (where the effect is visible).
"""

from _common import record_rows, run_once

from repro.core.batch import exaloglog_state
from repro.core.mlestimation import compute_coefficients, estimate_from_coefficients
from repro.core.params import make_params
from repro.experiments.common import env_int
from repro.simulation.rng import numpy_generator, random_hashes

RUNS = env_int("REPRO_RUNS_ABLATION", 1000)


def test_bias_correction(benchmark):
    # p = 4 (m = 16) and n ~ 30 m: the regime where the O(1/m) bias is
    # visible; at 1000 runs the Monte-Carlo error of the mean (~0.3 %) is
    # well below the expected ~0.7 % bias.
    params = make_params(2, 20, 4)
    n = 500

    def run():
        raw_sum = corrected_sum = 0.0
        for seed in range(RUNS):
            hashes = random_hashes(numpy_generator(0xB1A5, seed), n)
            coefficients = compute_coefficients(
                exaloglog_state(hashes, params), params
            )
            raw_sum += (
                estimate_from_coefficients(coefficients, params, bias_correction=False)
                / n
                - 1.0
            )
            corrected_sum += (
                estimate_from_coefficients(coefficients, params, bias_correction=True)
                / n
                - 1.0
            )
        return [
            {
                "estimator": "ML without Eq. (4)",
                "mean_relative_error": raw_sum / RUNS,
            },
            {
                "estimator": "ML with Eq. (4)",
                "mean_relative_error": corrected_sum / RUNS,
            },
        ]

    rows = run_once(benchmark, run)
    record_rows("ablation_bias", f"Bias correction at p=4 ({RUNS} runs)", rows)
    raw = rows[0]["mean_relative_error"]
    corrected = rows[1]["mean_relative_error"]
    assert raw > 0.0                       # uncorrected ML is biased high
    assert abs(corrected) < abs(raw)       # the correction helps
