"""Ablation: sparse-mode break-even (Sec. 4.3).

Memory of the token set vs the dense register array as n grows, and the
losslessness of the transition.
"""

from _common import record_rows, run_once

from repro.core.exaloglog import ExaLogLog
from repro.core.sparse import SparseExaLogLog
from repro.simulation.rng import numpy_generator, random_hashes


def test_sparse_break_even(benchmark):
    def run():
        rows = []
        for n in (10, 50, 100, 200, 224, 250, 500, 2000):
            hashes = random_hashes(numpy_generator(0x5BA6, n), n).tolist()
            sparse = SparseExaLogLog(2, 20, 8, v=26)
            dense = ExaLogLog(2, 20, 8)
            for h in hashes:
                sparse.add_hash(h)
                dense.add_hash(h)
            rows.append(
                {
                    "n": n,
                    "sparse_mode": sparse.is_sparse,
                    "sparse_memory": sparse.memory_bytes,
                    "dense_memory": dense.memory_bytes,
                    "sparse_serialized": len(sparse.to_bytes()),
                    "estimate_error": sparse.estimate() / n - 1.0,
                }
            )
        return rows

    rows = run_once(benchmark, run)
    record_rows("ablation_sparse", "Sparse-mode break-even (ELL(2,20,p=8), v=26)", rows)
    small = rows[0]
    large = rows[-1]
    assert small["sparse_mode"] and small["sparse_memory"] < small["dense_memory"] / 10
    assert not large["sparse_mode"]
    assert large["sparse_memory"] == large["dense_memory"]
    # Estimation stays accurate through the transition.
    for row in rows:
        assert abs(row["estimate_error"]) < 0.12
