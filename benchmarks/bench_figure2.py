"""Figure 2: geometric vs approximated update-value PMFs (t = 1, 2)."""

import pytest
from _common import record_rows, run_once

from repro.experiments import figure2


@pytest.mark.parametrize("t", [1, 2])
def test_figure2_panel(benchmark, t):
    rows = run_once(benchmark, lambda: figure2.run(t))
    record_rows(f"figure2_t{t}", f"Figure 2 panel t={t}", rows)
    checks = figure2.chunk_check(t)
    for row in checks:
        assert row["approximate_sum"] == pytest.approx(row["expected_2^-(c+1)"])
        assert row["geometric_sum"] == pytest.approx(row["expected_2^-(c+1)"])
