"""Warm-pool floor: persistent workers must never lose to the bulk fold.

The persistent pool's raison d'être is that a warm ``workers=`` call
costs one memcpy into the shared-memory segment plus dispatch — so at 1
worker it must track the single-process bulk fold (>= 0.95x, the pool
may not *cost* anything), and at 4 workers on a >= 4-core machine it
must genuinely scale (>= 1.8x). Cold-pool rates (fresh pool per call)
are recorded alongside for contrast: the gap between cold and warm *is*
the pool's payoff.

On machines with fewer than 4 cores the scaling gate is meaningless
(there is nothing to fan out to) and is reported as an explicit SKIP —
but bit-identity of every pool fold against the bulk fold is verified
unconditionally, so the transport is exercised everywhere.

Results go to ``BENCH_pool_reuse.json``.

Run directly::

    PYTHONPATH=src python benchmarks/bench_pool_reuse.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import pathlib
import sys
import time

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.backends.bulk import exaloglog_registers
from repro.core.params import ExaLogLogParams
from repro.experiments.common import format_table
from repro.parallel import (
    ParallelBulkIngestor,
    PersistentIngestPool,
    preferred_start_method,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUTPUT_JSON = REPO_ROOT / "BENCH_pool_reuse.json"
OUTPUT_TXT = pathlib.Path(__file__).resolve().parent / "output" / "bench_pool_reuse.txt"

PARAMS = ExaLogLogParams(2, 20, 8)

#: Timed repetitions (best-of); the warm pool's first call pays segment
#: creation, later calls are the steady state being measured.
ROUNDS = 4

#: The gates: warm-pool speedup vs bulk must meet these floors.
FLOOR_1_WORKER = 0.95
FLOOR_4_WORKERS = 1.8


def _rate(elapsed: float, count: int) -> float:
    return count / elapsed if elapsed > 0 else float("inf")


def _best_of(build, rounds: int = ROUNDS) -> tuple[float, object]:
    best, result = float("inf"), None
    for _ in range(rounds):
        start = time.perf_counter()
        candidate = build()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best, result = elapsed, candidate
    return best, result


def bench_worker_count(
    count: int, hashes: np.ndarray, expected: np.ndarray, bulk_rate: float
) -> list[dict]:
    n = len(hashes)
    # Through the pool even at 1 worker (ParallelBulkIngestor would
    # short-circuit in-process there, hiding the transport overhead the
    # 0.95x floor is supposed to bound).
    bounds = ParallelBulkIngestor(PARAMS, count).slice_bounds(n)

    def cold() -> np.ndarray:
        pool = PersistentIngestPool(workers=count, idle_timeout=0.0)
        try:
            return pool.fold_registers(hashes, bounds, PARAMS, workers=count)
        finally:
            pool.shutdown()

    cold_seconds, cold_registers = _best_of(cold)
    if not np.array_equal(cold_registers, expected):
        raise AssertionError(f"cold-pool fold diverged at workers={count}")

    warm_pool = PersistentIngestPool(workers=count, idle_timeout=0.0).warm(count)
    try:
        # Pay segment creation outside the timing (steady state is measured).
        warm_pool.fold_registers(hashes, bounds, PARAMS, workers=count)
        spawned = warm_pool.spawn_count
        warm_seconds, warm_registers = _best_of(
            lambda: warm_pool.fold_registers(hashes, bounds, PARAMS, workers=count)
        )
        if not np.array_equal(warm_registers, expected):
            raise AssertionError(f"warm-pool fold diverged at workers={count}")
        if warm_pool.spawn_count != spawned:
            raise AssertionError(
                f"warm pool respawned mid-benchmark at workers={count}"
            )
    finally:
        warm_pool.shutdown()

    cold_rate = _rate(cold_seconds, n)
    warm_rate = _rate(warm_seconds, n)
    return [
        {
            "mode": f"cold pool ({count} workers)",
            "workers": count,
            "pool": "cold",
            "n": n,
            "items_per_s": cold_rate,
            "speedup_vs_bulk": cold_rate / bulk_rate,
        },
        {
            "mode": f"warm pool ({count} workers)",
            "workers": count,
            "pool": "warm",
            "n": n,
            "items_per_s": warm_rate,
            "speedup_vs_bulk": warm_rate / bulk_rate,
        },
    ]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="CI mode: n = 6e5, workers {1, 2}"
    )
    parser.add_argument(
        "--output", type=pathlib.Path, default=OUTPUT_JSON, help="JSON output path"
    )
    args = parser.parse_args(argv)

    n = 600_000 if args.quick else 10_000_000
    worker_counts = (1, 2) if args.quick else (1, 2, 4)
    cpu_count = multiprocessing.cpu_count()
    rng = np.random.Generator(np.random.PCG64(0x9001_4E05E))
    hashes = rng.integers(0, 1 << 64, size=n, dtype=np.uint64)

    exaloglog_registers(hashes[: n // 100], PARAMS)  # warm ufuncs/allocator
    bulk_seconds, expected = _best_of(lambda: exaloglog_registers(hashes, PARAMS))
    bulk_rate = _rate(bulk_seconds, n)
    rows = [
        {
            "mode": "bulk fold (1 process)",
            "workers": 1,
            "pool": "none",
            "n": n,
            "items_per_s": bulk_rate,
            "speedup_vs_bulk": 1.0,
        }
    ]
    for count in worker_counts:
        rows.extend(bench_worker_count(count, hashes, expected, bulk_rate))

    for row in rows:
        print(
            f"{row['mode']:26s} n={n:>10,d}"
            f"  {row['items_per_s']:>14,.0f}/s"
            f"  vs bulk {row['speedup_vs_bulk']:>6.2f}x"
        )

    def warm_speedup(count: int):
        matches = [
            row["speedup_vs_bulk"]
            for row in rows
            if row["pool"] == "warm" and row["workers"] == count
        ]
        return matches[0] if matches else None

    gated = cpu_count >= 4 and not args.quick
    payload = {
        "quick": args.quick,
        "cpu_count": cpu_count,
        "start_method": preferred_start_method(),
        "n": n,
        "workers": list(worker_counts),
        "results": rows,
        "warm_1_worker_speedup": warm_speedup(1),
        "warm_4_worker_speedup": warm_speedup(4),
        "gates": {
            "warm_1_worker_floor": FLOOR_1_WORKER,
            "warm_4_worker_floor": FLOOR_4_WORKERS,
            "evaluated": gated,
        },
        "bit_identical": True,  # every fold above was asserted against bulk
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    OUTPUT_TXT.parent.mkdir(exist_ok=True)
    OUTPUT_TXT.write_text(
        "== pool reuse: bulk fold vs cold-pool vs warm-pool fan-out ==\n"
        f"(cpu_count={cpu_count}, start_method={preferred_start_method()})\n"
        + format_table(rows, ["mode", "n", "items_per_s", "speedup_vs_bulk"])
        + "\n"
    )
    print(f"\nwrote {args.output} and {OUTPUT_TXT}")

    if args.quick:
        print("OK: quick mode (bit-identity checked, no speedup gates)")
        return 0
    if cpu_count < 4:
        print(
            f"SKIP: speedup gates need >= 4 cores, this machine has {cpu_count} "
            "(bit-identity of every pool fold to the bulk fold was verified)"
        )
        return 0
    failures = []
    one = warm_speedup(1)
    four = warm_speedup(4)
    if one is None or one < FLOOR_1_WORKER:
        failures.append(f"warm pool @1 worker {one:.2f}x < {FLOOR_1_WORKER}x bulk")
    if four is None or four < FLOOR_4_WORKERS:
        failures.append(f"warm pool @4 workers {four:.2f}x < {FLOOR_4_WORKERS}x bulk")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(
        f"OK: warm pool {one:.2f}x bulk @1 worker, {four:.2f}x @4 workers "
        f"(floors {FLOOR_1_WORKER}x / {FLOOR_4_WORKERS}x)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
