"""Ablation: serialized size — raw array vs range coder vs Shannon bound.

Sec. 6 (future work): entropy coding should push ExaLogLog towards the
compressed MVPs of Figure 6. This bench measures how close our Sec. 3.1
model-based range coder gets for a small-d configuration where the exact
entropy is computable.
"""

from _common import record_rows, run_once

from repro.compression.codec import compress_registers
from repro.compression.entropy import theoretical_compressed_bytes
from repro.core.batch import exaloglog_state
from repro.core.params import make_params
from repro.simulation.rng import numpy_generator, random_hashes
from repro.theory.mvp import mvp_ml_compressed, mvp_ml_dense


def test_register_compression(benchmark):
    params = make_params(2, 6, 8)  # d small enough for the exact bound

    def run():
        rows = []
        for n in (1_000, 30_000, 300_000):
            hashes = random_hashes(numpy_generator(0xC0DE, n), n)
            registers = exaloglog_state(hashes, params)
            compressed = compress_registers(registers, params, float(n))
            bound = theoretical_compressed_bytes(float(n), params)
            rows.append(
                {
                    "n": n,
                    "raw_bytes": params.dense_bytes,
                    "range_coded_bytes": len(compressed),
                    "shannon_bound_bytes": bound,
                    "overhead_vs_bound": len(compressed) / bound,
                }
            )
        return rows

    rows = run_once(benchmark, run)
    record_rows(
        "ablation_compression",
        f"Register compression, {params} "
        f"(theory: dense MVP {mvp_ml_dense(2, 6):.2f} -> compressed "
        f"{mvp_ml_compressed(2, 6):.2f})",
        rows,
    )
    for row in rows:
        assert row["range_coded_bytes"] < row["raw_bytes"]
        assert row["overhead_vs_bound"] < 1.6
