"""Parallel ingest throughput: scalar vs bulk vs process-pool fan-out.

Measures ExaLogLog ingestion at ``n in {1e6, 1e7}`` (quick mode:
``{6e5}``, still beyond two ``BULK_CHUNK``\\ s so the pool genuinely
spins up) over precomputed 64-bit hashes four ways: the scalar
``add_hash`` loop (capped, rate is flat in n), the single-process bulk
``add_hashes`` fold, and the persistent-pool fan-out at 1/2/4 workers
measured **cold** (a fresh :class:`~repro.parallel.PersistentIngestPool`
spun up and shut down inside every timed round — what the old per-call
pools always paid) and **warm** (the module-level pool with workers
already alive, the steady-state path of repeated ``workers=`` calls) —
plus the sharded GROUP BY (``DistinctCountAggregator.add_batch(workers=
...)``). Results go to ``BENCH_parallel_ingest.json`` and a text table
under ``benchmarks/output/``.

The headline check: with >= 4 physical cores, *warm* parallel ingest at
4 workers must be >= 2x the single-process bulk fold at n = 1e7. On
smaller machines the fan-out cannot beat the fold (there is nothing to
fan out to), so the gate reports the core count and is skipped — the
bit-identity check against the bulk state always runs.

Run directly::

    PYTHONPATH=src python benchmarks/bench_parallel_ingest.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import pathlib
import sys
import time

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.aggregate import DistinctCountAggregator
from repro.core.exaloglog import ExaLogLog
from repro.experiments.common import format_table
from repro.parallel import (
    PersistentIngestPool,
    get_pool,
    parallel_exaloglog_registers,
    preferred_start_method,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUTPUT_JSON = REPO_ROOT / "BENCH_parallel_ingest.json"
OUTPUT_TXT = (
    pathlib.Path(__file__).resolve().parent / "output" / "bench_parallel_ingest.txt"
)

#: Upper bound on sequentially timed insertions (rate is flat in n).
SCALAR_CAP = 500_000

#: Timed repetitions (best-of); first calls pay allocator/pool warm-up.
ROUNDS = 3

WORKER_COUNTS = (1, 2, 4)

#: Group count for the sharded GROUP BY section.
AGGREGATE_GROUPS = 256


def _rate(elapsed: float, count: int) -> float:
    return count / elapsed if elapsed > 0 else float("inf")


def _best_of(build, rounds: int = ROUNDS) -> tuple[float, object]:
    best, result = float("inf"), None
    for _ in range(rounds):
        start = time.perf_counter()
        candidate = build()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best, result = elapsed, candidate
    return best, result


def bench_exaloglog(n: int, hashes: np.ndarray, workers: tuple[int, ...]) -> list[dict]:
    scalar_n = min(n, SCALAR_CAP)
    sketch = ExaLogLog(2, 20, 8)
    add_hash = sketch.add_hash
    start = time.perf_counter()
    for hash_value in hashes[:scalar_n].tolist():
        add_hash(hash_value)
    scalar_seconds = time.perf_counter() - start
    scalar_rate = _rate(scalar_seconds, scalar_n)

    bulk_seconds, bulk_sketch = _best_of(
        lambda: ExaLogLog(2, 20, 8).add_hashes(hashes)
    )
    bulk_rate = _rate(bulk_seconds, n)
    rows = [
        {
            "section": "exaloglog",
            "mode": "scalar add_hash loop",
            "n": n,
            "measured_n": scalar_n,
            "items_per_s": scalar_rate,
            "speedup_vs_bulk": scalar_rate / bulk_rate,
        },
        {
            "section": "exaloglog",
            "mode": "bulk add_hashes (1 process)",
            "n": n,
            "measured_n": n,
            "items_per_s": bulk_rate,
            "speedup_vs_bulk": 1.0,
        },
    ]
    params = bulk_sketch.params
    bulk_registers = list(bulk_sketch._registers)

    def cold_fold(count: int) -> np.ndarray:
        # Every timed round pays pool spawn + transport setup + teardown:
        # the cost profile of the pre-persistent-pool per-call design.
        pool = PersistentIngestPool(workers=count, idle_timeout=0.0)
        try:
            return parallel_exaloglog_registers(
                hashes, params, workers=count, pool=pool
            )
        finally:
            pool.shutdown()

    for count in workers:
        cold_seconds, cold_registers = _best_of(lambda: cold_fold(count))
        if cold_registers.tolist() != bulk_registers:
            raise AssertionError(
                f"cold-pool state diverged from bulk state at workers={count}"
            )
        cold_rate = _rate(cold_seconds, n)
        rows.append(
            {
                "section": "exaloglog",
                "mode": f"parallel cold-pool ({count} workers)",
                "n": n,
                "measured_n": n,
                "items_per_s": cold_rate,
                "speedup_vs_bulk": cold_rate / bulk_rate,
            }
        )

        # Warm path: the module-level pool's workers are already alive, so
        # each round is one segment memcpy + dispatch — the steady state.
        get_pool().warm(count)
        seconds, parallel_sketch = _best_of(
            lambda: ExaLogLog(2, 20, 8).add_hashes(hashes, workers=count)
        )
        # The contract the speedup rests on: identical final state.
        if parallel_sketch.to_bytes() != bulk_sketch.to_bytes():
            raise AssertionError(
                f"parallel state diverged from bulk state at workers={count}"
            )
        rate = _rate(seconds, n)
        rows.append(
            {
                "section": "exaloglog",
                "mode": f"parallel warm-pool ({count} workers)",
                "n": n,
                "measured_n": n,
                "items_per_s": rate,
                "speedup_vs_bulk": rate / bulk_rate,
            }
        )
    return rows


def bench_aggregate(n: int, hashes: np.ndarray, workers: tuple[int, ...]) -> list[dict]:
    rng = np.random.Generator(np.random.PCG64(n))
    groups = rng.integers(0, AGGREGATE_GROUPS, size=n).astype(np.int64)
    items = hashes.view(np.int64)

    bulk_seconds, bulk_aggregator = _best_of(
        lambda: DistinctCountAggregator(p=8).add_batch(groups, items)
    )
    bulk_rate = _rate(bulk_seconds, n)
    rows = [
        {
            "section": "group-by",
            "mode": "bulk add_batch (1 process)",
            "n": n,
            "measured_n": n,
            "items_per_s": bulk_rate,
            "speedup_vs_bulk": 1.0,
        }
    ]
    for count in workers:
        if count == 1:
            continue
        seconds, sharded = _best_of(
            lambda: DistinctCountAggregator(p=8).add_batch(groups, items, workers=count)
        )
        if sharded != bulk_aggregator:
            raise AssertionError(
                f"sharded aggregator diverged from bulk state at workers={count}"
            )
        rate = _rate(seconds, n)
        rows.append(
            {
                "section": "group-by",
                "mode": f"sharded add_batch ({count} workers)",
                "n": n,
                "measured_n": n,
                "items_per_s": rate,
                "speedup_vs_bulk": rate / bulk_rate,
            }
        )
    return rows


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="CI mode: n = 6e5, workers {1, 2}"
    )
    parser.add_argument(
        "--output", type=pathlib.Path, default=OUTPUT_JSON, help="JSON output path"
    )
    args = parser.parse_args(argv)

    # Quick mode still exceeds two BULK_CHUNKs so the pool genuinely spins up.
    sizes = [600_000] if args.quick else [1_000_000, 10_000_000]
    workers = (1, 2) if args.quick else WORKER_COUNTS
    cpu_count = multiprocessing.cpu_count()
    rng = np.random.Generator(np.random.PCG64(0x9A7A11E1))

    rows: list[dict] = []
    for n in sizes:
        hashes = rng.integers(0, 1 << 64, size=n, dtype=np.uint64)
        for row in bench_exaloglog(n, hashes, workers):
            rows.append(row)
            print(
                f"{row['mode']:34s} n={n:>10,d}"
                f"  {row['items_per_s']:>14,.0f}/s"
                f"  vs bulk {row['speedup_vs_bulk']:>6.2f}x"
            )
        for row in bench_aggregate(n, hashes, workers):
            rows.append(row)
            print(
                f"{row['mode']:34s} n={n:>10,d}"
                f"  {row['items_per_s']:>14,.0f}/s"
                f"  vs bulk {row['speedup_vs_bulk']:>6.2f}x"
            )

    headline = [
        row["speedup_vs_bulk"]
        for row in rows
        if row["section"] == "exaloglog"
        and row["n"] == 10_000_000
        and row["mode"].startswith("parallel warm-pool")
        and "4 workers" in row["mode"]
    ]
    payload = {
        "quick": args.quick,
        "cpu_count": cpu_count,
        "start_method": preferred_start_method(),
        "sizes": sizes,
        "workers": list(workers),
        "results": rows,
        "headline_parallel_4w_speedup_at_1e7": headline[0] if headline else None,
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    OUTPUT_TXT.parent.mkdir(exist_ok=True)
    OUTPUT_TXT.write_text(
        "== parallel ingest: scalar vs bulk vs process-pool fan-out ==\n"
        f"(cpu_count={cpu_count}, start_method={preferred_start_method()})\n"
        + format_table(
            rows, ["section", "mode", "n", "items_per_s", "speedup_vs_bulk"]
        )
        + "\n"
    )
    print(f"\nwrote {args.output} and {OUTPUT_TXT}")

    # The acceptance gate: >= 2x over the single-process bulk fold at
    # n = 1e7 with 4 workers — only meaningful with >= 4 cores to fan to.
    if args.quick:
        print("OK: quick mode (equivalence checked, no speedup gate)")
        return 0
    if cpu_count < 4:
        print(
            f"SKIP: speedup gate needs >= 4 cores, this machine has {cpu_count} "
            "(bit-identity to the bulk state was still verified)"
        )
        return 0
    if not headline or headline[0] < 2.0:
        measured = headline[0] if headline else float("nan")
        print(f"FAIL: parallel(4 workers) speedup {measured:.2f}x < 2x at n = 1e7")
        return 1
    print(f"OK: parallel(4 workers) speedup {headline[0]:.2f}x >= 2x at n = 1e7")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
