"""Figures 4-7: the four MVP formulas swept over d, plus the named points."""

import pytest
from _common import record_rows, run_once

from repro.experiments import figure4to7


@pytest.mark.parametrize("figure", ["figure4", "figure5", "figure6", "figure7"])
def test_mvp_sweep(benchmark, figure):
    rows = run_once(benchmark, lambda: figure4to7.sweep(figure))
    record_rows(figure, f"{figure}: {figure4to7.FIGURES[figure][0]}", rows[::4])
    minima = figure4to7.minima(figure)
    record_rows(f"{figure}_minima", f"{figure} minima", minima)


def test_named_configurations(benchmark):
    rows = run_once(benchmark, figure4to7.named_points)
    record_rows("figure4to7_named", "Named configurations (Sec. 2.4)", rows)
    by_name = {row["config"]: row for row in rows}
    # The paper's headline numbers.
    assert by_name["ELL(2,20)"]["dense_ml"] == pytest.approx(3.67, abs=0.01)
    assert by_name["ELL(2,24)"]["dense_ml"] == pytest.approx(3.78, abs=0.01)
    assert by_name["ELL(1,9)"]["dense_ml"] == pytest.approx(3.90, abs=0.01)
    assert by_name["ELL(2,16)"]["dense_martingale"] == pytest.approx(2.77, abs=0.01)
    assert by_name["ELL(2,20)"]["saving_vs_hll_%"] == pytest.approx(43.0, abs=0.5)
