"""Figure 9: ML estimation from collected hash tokens (sparse mode)."""

import math

import pytest
from _common import record_rows, run_once

from repro.experiments import figure9
from repro.experiments.common import env_int

RUNS = env_int("REPRO_RUNS_FIGURE9", 30)


@pytest.mark.parametrize("v", [6, 8, 10, 12, 18, 26])
def test_figure9_panel(benchmark, v):
    rows = run_once(benchmark, lambda: figure9.run_v(v, runs=RUNS))
    record_rows(f"figure9_v{v}", f"Figure 9: token estimation v={v} ({RUNS} runs)", rows)
    # Essentially unbiased: the bias never exceeds the RMSE (at tiny n the
    # estimate is deterministic, so bias == rmse ~ 1e-9 — negligible). The
    # 1 % absolute bound only applies while the token space is not
    # saturated (n << 2**v); the paper's v=6 panel likewise shows the bias
    # rising once n approaches the token capacity.
    for row in rows:
        assert abs(row["bias"]) <= row["rmse"] * (1.0 + 4.0 / math.sqrt(RUNS))
        if row["n"] <= 2.0 ** v:
            assert abs(row["bias"]) < 0.01
    assert rows[-1]["rmse"] >= rows[0]["rmse"]


def test_figure9_error_decreases_with_v(benchmark):
    """Bigger tokens -> smaller estimation error at fixed n."""
    def run():
        return {
            v: figure9.run_v(v, runs=max(8, RUNS // 2), n_max=10000)[-1]["rmse"]
            for v in (6, 12, 26)
        }

    final_rmse = run_once(benchmark, run)
    record_rows(
        "figure9_v_comparison",
        "Figure 9: rmse at n=1e4 by token size",
        [{"v": v, "rmse": r} for v, r in final_rmse.items()],
    )
    assert final_rmse[6] > final_rmse[12] > final_rmse[26]
