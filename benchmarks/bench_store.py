"""Durable-store benchmarks: memmap fold overhead, WAL ingest, spill GROUP BY.

Three sections, results to ``BENCH_store.json`` and a text table under
``benchmarks/output/``:

1. **memmap vs in-memory fold** — ``ExaLogLog.add_hashes`` against
   :class:`repro.store.MemmapRegisters.add_hashes` over the same hash
   batches (bit-identity verified); the overhead ratio is the price of a
   disk-backed, OS-paged register array.
2. **WAL ingest** — :class:`repro.store.SketchStore` append throughput
   (the durable path pays one log write per batch) plus recovery time of
   the resulting WAL.
3. **spill GROUP BY at many groups** — :class:`repro.store.SpilledGroupBy`
   end-to-end (spill + partition merge, streamed estimates) at
   ``SPILL_GROUPS`` groups with a **bounded-RSS assertion**: peak RSS may
   grow by at most ``RSS_BOUND_MB`` while the modelled in-memory
   aggregator footprint for the same group count is reported alongside —
   the point is that disk, not RAM, absorbs the group count.

Run directly::

    PYTHONPATH=src python benchmarks/bench_store.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import resource
import sys
import tempfile
import time

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.core.exaloglog import ExaLogLog
from repro.experiments.common import format_table
from repro.store import MemmapRegisters, SketchStore, SpilledGroupBy

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUTPUT_JSON = REPO_ROOT / "BENCH_store.json"
OUTPUT_TXT = pathlib.Path(__file__).resolve().parent / "output" / "bench_store.txt"

#: Timed repetitions (best-of); first calls pay allocator warm-up.
ROUNDS = 3

#: Peak-RSS growth allowed for the spill GROUP BY section.
RSS_BOUND_MB = 400


def _rate(elapsed: float, count: int) -> float:
    return count / elapsed if elapsed > 0 else float("inf")


def _best_of(build, rounds: int = ROUNDS):
    best, result = float("inf"), None
    for _ in range(rounds):
        start = time.perf_counter()
        candidate = build()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best, result = elapsed, candidate
    return best, result


def _max_rss_mb() -> float:
    # ru_maxrss is KiB on Linux, bytes on macOS.
    scale = 1024.0 if sys.platform == "darwin" else 1.0
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * scale / 1024.0


def bench_memmap_fold(n: int, workdir: pathlib.Path) -> list[dict]:
    rng = np.random.Generator(np.random.PCG64(7))
    hashes = rng.integers(0, 1 << 64, size=n, dtype=np.uint64)

    memory_seconds, memory_sketch = _best_of(
        lambda: ExaLogLog(2, 20, 8).add_hashes(hashes)
    )

    def build_memmap():
        path = workdir / "bench.reg"
        if path.exists():
            path.unlink()
        with MemmapRegisters.create(path, "exaloglog", 2, 20, 8) as registers:
            registers.add_hashes(hashes)
            return registers.to_sketch()

    memmap_seconds, memmap_sketch = _best_of(build_memmap)
    if memmap_sketch.to_bytes() != memory_sketch.to_bytes():
        raise SystemExit("BIT-IDENTITY FAILURE: memmap fold diverged from in-memory")
    return [
        {
            "section": "memmap_fold",
            "mode": "in-memory add_hashes",
            "n": n,
            "items_per_s": _rate(memory_seconds, n),
            "overhead_vs_memory": 1.0,
            "bit_identical": True,
        },
        {
            "section": "memmap_fold",
            "mode": "memmap add_hashes (create+fold+flush)",
            "n": n,
            "items_per_s": _rate(memmap_seconds, n),
            "overhead_vs_memory": memmap_seconds / memory_seconds,
            "bit_identical": True,
        },
    ]


def bench_wal_ingest(n: int, batch: int, workdir: pathlib.Path) -> list[dict]:
    rng = np.random.Generator(np.random.PCG64(11))
    hashes = rng.integers(0, 1 << 64, size=n, dtype=np.uint64)

    directory = workdir / "walbench"

    def ingest():
        import shutil

        if directory.exists():
            shutil.rmtree(directory)
        with SketchStore.open(directory, p=8) as store:
            for start in range(0, n, batch):
                store.append_hashes("demo", hashes[start : start + batch])
            return store.wal_bytes

    ingest_seconds, wal_bytes = _best_of(ingest)

    recover_seconds, recovered = _best_of(lambda: SketchStore.open(directory))
    recovered.close()
    return [
        {
            "section": "wal_ingest",
            "mode": f"append_hashes (batch={batch})",
            "n": n,
            "items_per_s": _rate(ingest_seconds, n),
            "wal_bytes": wal_bytes,
        },
        {
            "section": "wal_ingest",
            "mode": "open() with WAL replay",
            "n": n,
            "items_per_s": _rate(recover_seconds, n),
            "recover_seconds": recover_seconds,
        },
    ]


def bench_spill_groupby(
    group_count: int, items_per_group: int, workdir: pathlib.Path
) -> list[dict]:
    rss_before = _max_rss_mb()
    total = group_count * items_per_group
    chunk = 1 << 20
    spill = SpilledGroupBy(workdir / "spillbench", p=8, partitions=64)
    rng = np.random.Generator(np.random.PCG64(13))

    start = time.perf_counter()
    produced = 0
    while produced < total:
        size = min(chunk, total - produced)
        groups = rng.integers(0, group_count, size=size).astype(np.int64)
        items = rng.integers(0, 1 << 62, size=size, dtype=np.int64)
        spill.add_batch(groups, items)
        produced += size
    spill_seconds = time.perf_counter() - start

    start = time.perf_counter()
    observed_groups = 0
    checksum = 0.0
    for _, estimate in spill.iter_estimates():
        observed_groups += 1
        checksum += estimate
    merge_seconds = time.perf_counter() - start
    spill.cleanup()

    rss_after = _max_rss_mb()
    rss_delta = rss_after - rss_before
    # What the all-in-RAM aggregator would hold for the same groups —
    # modelled sketch payloads only (the library's JVM-style memory model;
    # Python object overhead is several times larger, and materialising a
    # million sketch objects is exactly the blow-up this plan avoids).
    from repro.baselines.base import OBJECT_OVERHEAD_BYTES

    modelled_sketch_payload_mb = (
        group_count * (OBJECT_OVERHEAD_BYTES + 80 + items_per_group * 4) / 1024.0 / 1024.0
    )
    bounded = rss_delta <= RSS_BOUND_MB
    return [
        {
            "section": "spill_groupby",
            "mode": f"spill write ({spill.partitions} partitions)",
            "n": total,
            "groups": group_count,
            "items_per_s": _rate(spill_seconds, total),
        },
        {
            "section": "spill_groupby",
            "mode": "partition merge + streamed estimates",
            "n": total,
            "groups": observed_groups,
            "items_per_s": _rate(merge_seconds, total),
            "estimate_checksum": round(checksum, 1),
        },
        {
            "section": "spill_groupby",
            "mode": "peak-RSS growth",
            "n": total,
            "groups": group_count,
            "rss_delta_mb": round(rss_delta, 1),
            "rss_bound_mb": RSS_BOUND_MB,
            "modelled_sketch_payload_mb": round(modelled_sketch_payload_mb, 1),
            "bounded": bounded,
        },
    ]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="CI-sized runs (smaller n and groups)"
    )
    arguments = parser.parse_args()

    fold_n = 200_000 if arguments.quick else 1_000_000
    wal_n = 100_000 if arguments.quick else 1_000_000
    spill_groups = 100_000 if arguments.quick else 1_000_000
    items_per_group = 2

    rows: list[dict] = []
    with tempfile.TemporaryDirectory(prefix="bench_store_") as workdir:
        workdir = pathlib.Path(workdir)
        rows += bench_memmap_fold(fold_n, workdir)
        rows += bench_wal_ingest(wal_n, 1 << 16, workdir)
        rows += bench_spill_groupby(spill_groups, items_per_group, workdir)

    text = "== Durable store: memmap fold / WAL ingest / spill GROUP BY ==\n"
    text += format_table(rows)
    print("\n" + text)
    OUTPUT_TXT.parent.mkdir(exist_ok=True)
    OUTPUT_TXT.write_text(text + "\n")
    OUTPUT_JSON.write_text(
        json.dumps({"quick": arguments.quick, "rows": rows}, indent=2) + "\n"
    )
    print(f"\nwrote {OUTPUT_JSON} and {OUTPUT_TXT}")

    rss_row = next(row for row in rows if row["mode"] == "peak-RSS growth")
    if not rss_row["bounded"]:
        print(
            f"BOUNDED-RSS FAILURE: spill GROUP BY grew peak RSS by "
            f"{rss_row['rss_delta_mb']} MB (bound {RSS_BOUND_MB} MB)",
            file=sys.stderr,
        )
        return 1
    print(
        f"bounded-RSS gate ok: +{rss_row['rss_delta_mb']} MB at "
        f"{rss_row['groups']} groups (bound {RSS_BOUND_MB} MB; modelled "
        f"in-memory sketch payloads alone: {rss_row['modelled_sketch_payload_mb']} MB)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
