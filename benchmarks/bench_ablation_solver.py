"""Ablation: Algorithm 8's Newton solver vs generic root finding.

The paper's Appendix A argues for a custom Newton iteration (power-of-two
recursions, Jensen starting point). This bench quantifies the design
choice: iterations and wall time against plain bisection on the same
likelihoods, plus the correctness cross-check.
"""

import time

import pytest
from _common import record_rows, run_once

from repro.core.batch import exaloglog_state
from repro.core.mlestimation import compute_coefficients
from repro.core.params import make_params
from repro.estimation.newton import solve_ml_equation, solve_ml_equation_bisection
from repro.simulation.rng import numpy_generator, random_hashes


def _coefficient_sets():
    params = make_params(2, 20, 8)
    sets = []
    for seed, n in enumerate((10, 1000, 100_000)):
        hashes = random_hashes(numpy_generator(seed, 0), n)
        coefficients = compute_coefficients(exaloglog_state(hashes, params), params)
        sets.append((n, coefficients))
    return params, sets


def test_newton_vs_bisection(benchmark):
    params, sets = _coefficient_sets()

    def run():
        rows = []
        for n, coefficients in sets:
            start = time.perf_counter()
            for _ in range(50):
                solution = solve_ml_equation(coefficients.alpha, coefficients.beta)
            newton_time = (time.perf_counter() - start) / 50
            start = time.perf_counter()
            for _ in range(5):
                bisected = solve_ml_equation_bisection(
                    coefficients.alpha, coefficients.beta
                )
            bisect_time = (time.perf_counter() - start) / 5
            rows.append(
                {
                    "n": n,
                    "newton_iterations": solution.iterations,
                    "newton_s": newton_time,
                    "bisection_s": bisect_time,
                    "speedup": bisect_time / newton_time,
                    "relative_difference": abs(solution.nu - bisected)
                    / max(bisected, 1e-12),
                }
            )
        return rows

    rows = run_once(benchmark, run)
    record_rows("ablation_solver", "Newton (Alg. 8) vs bisection", rows)
    for row in rows:
        assert row["newton_iterations"] <= 10          # Appendix A claim
        assert row["relative_difference"] < 1e-6        # same root
        assert row["speedup"] > 3.0                     # the design pays off
