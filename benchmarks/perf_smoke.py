"""Perf smoke: quick benches vs checked-in baselines, relative metrics only.

Runs the quick-mode ingest, estimation, and pool benches into a scratch
directory and compares their **relative** metrics (speedup ratios — the
numbers that survive a machine change, unlike items/sec) against the
checked-in ``BENCH_*.json`` baselines. Rows are matched by workload key
(sketch/config/mode plus n), so only measurements of the *same* workload
are ever compared; quick-mode rows with no full-mode twin are skipped and
reported. A matched ratio falling more than ``TOLERANCE`` (30%) below its
baseline fails the run — that is the CI tripwire for "someone made the
fast path slow" that absolute rates cannot provide on shared runners.

Every underlying bench still asserts bit-identity internally, so a
passing smoke run re-verifies correctness along the way.

Run directly::

    PYTHONPATH=src python benchmarks/perf_smoke.py
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import tempfile

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: A matched speedup may regress at most this fraction below its baseline.
TOLERANCE = 0.30

#: (label, bench module, checked-in baseline, row key fields, metric field).
BENCHES = [
    (
        "bulk_ingest",
        "bench_bulk_ingest",
        "BENCH_bulk_ingest.json",
        ("sketch", "n"),
        "speedup",
    ),
    (
        "estimate",
        "bench_estimate",
        "BENCH_estimate.json",
        ("section", "config", "n"),
        "speedup",
    ),
    (
        "parallel_ingest",
        "bench_parallel_ingest",
        "BENCH_parallel_ingest.json",
        ("section", "mode", "n"),
        "speedup_vs_bulk",
    ),
    (
        "pool_reuse",
        "bench_pool_reuse",
        "BENCH_pool_reuse.json",
        ("mode", "n"),
        "speedup_vs_bulk",
    ),
]


def _rows_by_key(payload: dict, key_fields: tuple) -> dict:
    return {
        tuple(row[field] for field in key_fields): row
        for row in payload.get("results", [])
        if all(field in row for field in key_fields)
    }


def compare(label: str, fresh: dict, baseline: dict, key_fields, metric) -> list[str]:
    """Regression messages for every matched row below tolerance."""
    fresh_rows = _rows_by_key(fresh, key_fields)
    base_rows = _rows_by_key(baseline, key_fields)
    common = sorted(set(fresh_rows) & set(base_rows), key=str)
    if not common:
        print(f"  {label}: no workload rows in common with the baseline (skipped)")
        return []
    failures = []
    for key in common:
        measured = fresh_rows[key][metric]
        expected = base_rows[key][metric]
        floor = expected * (1.0 - TOLERANCE)
        status = "ok" if measured >= floor else "REGRESSED"
        print(
            f"  {label} {key}: {metric} {measured:.2f} "
            f"(baseline {expected:.2f}, floor {floor:.2f}) {status}"
        )
        if measured < floor:
            failures.append(
                f"{label} {key}: {metric} {measured:.2f} < "
                f"{floor:.2f} (baseline {expected:.2f} - {TOLERANCE:.0%})"
            )
    return failures


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--baseline-dir",
        type=pathlib.Path,
        default=REPO_ROOT,
        help="directory holding the checked-in BENCH_*.json baselines",
    )
    args = parser.parse_args(argv)

    failures: list[str] = []
    with tempfile.TemporaryDirectory(prefix="perf-smoke-") as scratch:
        scratch_dir = pathlib.Path(scratch)
        for label, module_name, baseline_name, key_fields, metric in BENCHES:
            baseline_path = args.baseline_dir / baseline_name
            if not baseline_path.exists():
                print(f"  {label}: no baseline at {baseline_path} (skipped)")
                continue
            module = __import__(module_name)
            output = scratch_dir / f"{label}.json"
            print(f"== {label}: running {module_name} --quick ==")
            code = module.main(["--quick", "--output", str(output)])
            if code != 0:
                failures.append(f"{label}: quick bench exited with code {code}")
                continue
            fresh = json.loads(output.read_text())
            baseline = json.loads(baseline_path.read_text())
            failures.extend(compare(label, fresh, baseline, key_fields, metric))

    if failures:
        print("\nPERF SMOKE FAILED:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print("\nPERF SMOKE OK: no relative metric regressed beyond "
          f"{TOLERANCE:.0%} of its baseline")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
