"""Shared helpers for the benchmark targets.

Every bench (a) regenerates one table/figure of the paper through the
runners in :mod:`repro.experiments`, (b) records the produced rows under
``benchmarks/output/`` so the numbers survive pytest's stdout capture, and
(c) reports the wall time through pytest-benchmark (``pedantic`` with a
single round — these are experiment regenerations, not microbenchmarks;
the Figure 11 bench is the one doing genuine operation timing).

Scaling: run counts default to small CI-friendly values and are
overridable via ``REPRO_*`` environment variables (see EXPERIMENTS.md for
the settings used for the committed results).
"""

from __future__ import annotations

import pathlib
from typing import Any, Callable, Sequence

from repro.experiments.common import format_table

OUTPUT_DIR = pathlib.Path(__file__).resolve().parent / "output"


def record(name: str, text: str) -> None:
    """Persist a bench's table under benchmarks/output/<name>.txt."""
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")


def record_rows(name: str, title: str, rows: Sequence[dict[str, Any]], columns=None) -> None:
    text = f"== {title} ==\n{format_table(rows, columns)}"
    record(name, text)
    print("\n" + text)


def run_once(benchmark, func: Callable[[], Any]) -> Any:
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, rounds=1, iterations=1)
