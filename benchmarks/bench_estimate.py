"""Estimation throughput: scalar Alg. 3 + Alg. 8 vs the batched engine.

Measures the query side that PR 4 vectorises:

* **single-sketch ML estimate** — ``compute_coefficients`` +
  ``estimate_from_coefficients`` (the pre-batch scalar pipeline) against
  ``ExaLogLog.estimate()``'s vectorised fast path, at p = 11 and p = 14.
* **grouped estimates()** — a ``DistinctCountAggregator`` with many
  groups, scalar per-group pipeline against the one-shot batched
  ``estimates()`` (stacked register matrix, simultaneous Newton solve).
* **family-wide** — ``HyperLogLog.estimate_ml_many`` over a sketch fleet
  (context row, not gated).

Every comparison asserts bit-identical results before reporting a
speedup — the batched engine's contract is exact equality, not
approximation. Results go to ``BENCH_estimate.json`` and a text table
under ``benchmarks/output/``.

Acceptance gates (full mode): >= 10x single-sketch at p >= 14 and
>= 50x on the >= 10k-group ``estimates()``. Quick mode (CI, 1-core
runners) shrinks the workload and relaxes the gates to the correctness
assertion only, mirroring the parallel bench's SKIP convention.

Run directly::

    PYTHONPATH=src python benchmarks/bench_estimate.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.aggregate import DistinctCountAggregator
from repro.baselines.hyperloglog import HyperLogLog
from repro.core.exaloglog import ExaLogLog
from repro.core.mlestimation import compute_coefficients, estimate_from_coefficients
from repro.experiments.common import format_table

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUTPUT_JSON = REPO_ROOT / "BENCH_estimate.json"
OUTPUT_TXT = pathlib.Path(__file__).resolve().parent / "output" / "bench_estimate.txt"

#: Timed repetitions of the batched call (best-of; first calls pay
#: allocator and table-build costs that are not the estimation path).
BATCH_ROUNDS = 3


def _scalar_estimate(sketch) -> float:
    """The pre-batch pipeline: scalar Algorithm 3 + Algorithm 8 + Eq. (4)."""
    return estimate_from_coefficients(
        compute_coefficients(sketch._registers, sketch.params), sketch.params
    )


def bench_single(p: int, n: int, rng, scalar_rounds: int) -> dict:
    sketch = ExaLogLog(2, 20, p)
    sketch.add_hashes(rng.integers(0, 1 << 64, size=n, dtype=np.uint64))

    start = time.perf_counter()
    for _ in range(scalar_rounds):
        scalar = _scalar_estimate(sketch)
    scalar_seconds = (time.perf_counter() - start) / scalar_rounds

    sketch.estimate()  # warm tables and the LUT plan
    batched_seconds = float("inf")
    for _ in range(10 * BATCH_ROUNDS):
        start = time.perf_counter()
        batched = sketch.estimate()
        batched_seconds = min(batched_seconds, time.perf_counter() - start)

    if batched != scalar:
        raise AssertionError(
            f"batched single-sketch estimate diverged at p={p}: "
            f"{batched!r} != {scalar!r}"
        )
    return {
        "section": "single",
        "config": f"ELL(2,20) p={p}",
        "rows": 1,
        "n": n,
        "scalar_s": scalar_seconds,
        "batched_s": batched_seconds,
        "speedup": scalar_seconds / batched_seconds,
    }


def bench_groups(p: int, groups: int, items_per_group: int, rng) -> dict:
    aggregator = DistinctCountAggregator(t=2, d=20, p=p, sparse=False)
    for group in range(groups):
        sketch = ExaLogLog(2, 20, p)
        sketch.add_hashes(
            rng.integers(0, 1 << 64, size=items_per_group, dtype=np.uint64)
        )
        aggregator._groups[str(group).encode()] = sketch

    sketches = list(aggregator._groups.values())
    start = time.perf_counter()
    scalar = [_scalar_estimate(sketch) for sketch in sketches]
    scalar_seconds = time.perf_counter() - start

    aggregator.estimates()  # warm tables and the LUT plan
    batched_seconds = float("inf")
    for _ in range(BATCH_ROUNDS):
        start = time.perf_counter()
        batched = aggregator.estimates()
        batched_seconds = min(batched_seconds, time.perf_counter() - start)

    if list(batched.values()) != scalar:
        raise AssertionError(
            f"batched group estimates diverged from the scalar pipeline "
            f"(p={p}, {groups} groups)"
        )
    return {
        "section": "groups",
        "config": f"estimates() p={p}",
        "rows": groups,
        "n": groups * items_per_group,
        "scalar_s": scalar_seconds,
        "batched_s": batched_seconds,
        "speedup": scalar_seconds / batched_seconds,
    }


def bench_hyperloglog(p: int, count: int, items_per_sketch: int, rng) -> dict:
    sketches = []
    for _ in range(count):
        sketch = HyperLogLog(p)
        sketch.add_hashes(
            rng.integers(0, 1 << 64, size=items_per_sketch, dtype=np.uint64)
        )
        sketches.append(sketch)

    from repro.core.params import make_params

    params = make_params(0, 0, p)
    start = time.perf_counter()
    scalar = [
        estimate_from_coefficients(
            compute_coefficients(sketch._registers, params), params
        )
        for sketch in sketches
    ]
    scalar_seconds = time.perf_counter() - start

    HyperLogLog.estimate_ml_many(sketches)
    batched_seconds = float("inf")
    for _ in range(BATCH_ROUNDS):
        start = time.perf_counter()
        batched = HyperLogLog.estimate_ml_many(sketches)
        batched_seconds = min(batched_seconds, time.perf_counter() - start)

    if batched.tolist() != scalar:
        raise AssertionError("batched HLL ML estimates diverged from scalar")
    return {
        "section": "hll",
        "config": f"HLL ML many p={p}",
        "rows": count,
        "n": count * items_per_sketch,
        "scalar_s": scalar_seconds,
        "batched_s": batched_seconds,
        "speedup": scalar_seconds / batched_seconds,
    }


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI mode: small workload, correctness-only (no speedup gate)",
    )
    parser.add_argument(
        "--output", type=pathlib.Path, default=OUTPUT_JSON, help="JSON output path"
    )
    args = parser.parse_args(argv)
    rng = np.random.Generator(np.random.PCG64(0xE571))

    rows = []
    if args.quick:
        rows.append(bench_single(11, 16_000, rng, scalar_rounds=5))
        rows.append(bench_single(14, 50_000, rng, scalar_rounds=2))
        rows.append(bench_groups(8, 400, 500, rng))
        rows.append(bench_hyperloglog(10, 200, 2_000, rng))
    else:
        rows.append(bench_single(11, 16_000, rng, scalar_rounds=10))
        rows.append(bench_single(14, 200_000, rng, scalar_rounds=5))
        rows.append(bench_groups(10, 10_000, 8_000, rng))
        rows.append(bench_hyperloglog(12, 2_000, 20_000, rng))

    for row in rows:
        print(
            f"{row['config']:22s} rows={row['rows']:>6,d}  "
            f"scalar {row['scalar_s']:9.4f} s  batched {row['batched_s']:9.5f} s"
            f"  speedup {row['speedup']:7.1f}x"
        )

    single_gate = next(
        row["speedup"] for row in rows if row["section"] == "single" and "p=14" in row["config"]
    )
    groups_gate = next(row["speedup"] for row in rows if row["section"] == "groups")
    payload = {
        "quick": args.quick,
        "results": rows,
        "single_sketch_p14_speedup": single_gate,
        "grouped_estimates_speedup": groups_gate,
        "bit_identical": True,  # asserted above, the run fails otherwise
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    OUTPUT_TXT.parent.mkdir(exist_ok=True)
    OUTPUT_TXT.write_text(
        "== estimation: scalar Alg.3 + Alg.8 pipeline vs batched engine ==\n"
        + format_table(
            rows, ["section", "config", "rows", "n", "scalar_s", "batched_s", "speedup"]
        )
        + "\n"
    )
    print(f"\nwrote {args.output} and {OUTPUT_TXT}")

    if args.quick:
        # Mirrors the parallel bench's convention: on CI runners timing is
        # not meaningful, so the speedup gate is skipped and the run
        # stands on the bit-identity assertions above.
        print(
            "SKIP: speedup gates skipped in quick mode "
            "(bit-identity of all batched estimates asserted)"
        )
        return 0
    failed = False
    if single_gate < 10.0:
        print(f"FAIL: single-sketch p=14 speedup {single_gate:.1f}x < 10x")
        failed = True
    if groups_gate < 50.0:
        print(f"FAIL: grouped estimates() speedup {groups_gate:.1f}x < 50x")
        failed = True
    if not failed:
        print(
            f"OK: single-sketch p=14 {single_gate:.1f}x >= 10x, "
            f"grouped estimates() {groups_gate:.1f}x >= 50x"
        )
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
