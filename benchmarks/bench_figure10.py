"""Figure 10: memory footprint and empirical MVP vs distinct count."""

from _common import record_rows, run_once

from repro.experiments import figure10
from repro.experiments.common import env_int

RUNS = env_int("REPRO_RUNS_FIGURE10", 24)
N_MAX = env_int("REPRO_N_FIGURE10", 100_000)


def test_figure10(benchmark):
    results = run_once(benchmark, lambda: figure10.run(n_max=N_MAX, runs=RUNS))
    for name, rows in results.items():
        safe = name.replace(" ", "_").replace("(", "").replace(")", "").replace(",", "_")
        record_rows(f"figure10_{safe}", f"Figure 10: {name} ({RUNS} runs)", rows)

    def series(name):
        return results[name]

    # 1. ELL memory is constant in n.
    ell = series("ELL (t=2,d=20,p=8)")
    assert len({row["memory_bytes"] for row in ell}) == 1
    # 2. Sparse ELL is smaller than dense ELL at small n and converges.
    sparse = series("ELL sparse (t=2,d=20,p=8,v=26)")
    assert sparse[0]["memory_bytes"] < ell[0]["memory_bytes"] / 4
    assert sparse[-1]["memory_bytes"] >= ell[-1]["memory_bytes"]
    # 3. SpikeSketch MVP blows up at small n (Sec. 5.2).
    spike = series("SpikeSketch (128)")
    assert spike[0]["empirical_mvp"] > 10 * spike[-1]["empirical_mvp"]
    # 4. HLLL shows an error spike in the linear-counting hand-over region
    #    (n ~ 2.5 m ~ 5e3) relative to its asymptotic error.
    hlll = series("HLLL (p=11)")
    by_n = {row["n"]: row["rmse_%"] for row in hlll}
    spike_region = max(v for n, v in by_n.items() if 2e3 <= n <= 2e4)
    assert spike_region > by_n[max(by_n)] * 1.05
    # 5. At large n, ELL has the smallest empirical MVP among dense sketches.
    final_mvp = {name: rows[-1]["empirical_mvp"] for name, rows in results.items()}
    assert final_mvp["ELL (t=2,d=20,p=8)"] < final_mvp["HLL (6-bit, p=11)"]
    assert final_mvp["ELL (t=2,d=20,p=8)"] < final_mvp["ULL (ML, p=10)"]
