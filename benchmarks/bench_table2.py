"""Table 2: space-efficiency comparison of all ten algorithms.

Paper (n=1e6, 1M runs): HLL8 9.66 > HLL6 7.54 > HLL-ML 6.63 > HLL4 5.60 >
CPC 5.30 > ULL 4.78 > HLLL 4.64 > Spike >= 4.19 > ELL(2,24) 3.93 >
ELL(2,20) 3.86; CPC serialized 2.46. Known deviations of this reproduction
(documented in EXPERIMENTS.md): our CPC surrogate uses ML estimation and a
near-entropy coder, landing *better* than DataSketches CPC; our SpikeSketch
model lands *worse* than the (unconfirmed) published MVP.
"""

from _common import record_rows, run_once

from repro.experiments import table2
from repro.experiments.common import env_int

RUNS = env_int("REPRO_RUNS_TABLE2", 64)
N = env_int("REPRO_N_TABLE2", 100_000)


def test_table2(benchmark):
    rows = run_once(benchmark, lambda: table2.run(n=N, runs=RUNS))
    record_rows("table2", f"Table 2 (n={N}, {RUNS} runs, sorted by memory MVP)", rows)
    mvp = {row["algorithm"]: row["mvp_memory"] for row in rows}
    serialized_mvp = {row["algorithm"]: row["mvp_serialized"] for row in rows}

    # Headline orderings the paper reports (robust at >= 64 runs):
    # 1. ELL beats every HLL flavour and ULL in memory MVP.
    for ell in ("ELL (t=2,d=20,p=8)", "ELL (t=2,d=24,p=8)"):
        for other in ("HLL (8-bit, p=11)", "HLL (6-bit, p=11)", "HLL (ML, p=11)",
                      "ULL (ML, p=10)"):
            assert mvp[ell] < mvp[other], (ell, other)
    # 2. ELL(2,20) is the most space-efficient dense sketch. Our HLL4 and
    #    HLLL models are leaner than the originals and sit within a few
    #    percent of it (EXPERIMENTS.md note 2), so allow Monte-Carlo slack.
    assert mvp["ELL (t=2,d=20,p=8)"] <= 1.15 * min(
        v for k, v in mvp.items() if k != "CPC (p=10)"
    )
    # 3. The 8-bit > 6-bit > ML ordering within the HLL family.
    assert mvp["HLL (8-bit, p=11)"] > mvp["HLL (6-bit, p=11)"] >= mvp["HLL (ML, p=11)"] * 0.95
    # 4. CPC's serialized MVP is far below its in-memory MVP.
    assert serialized_mvp["CPC (p=10)"] < 0.75 * mvp["CPC (p=10)"]
    # 5. Everything stays above the conjectured 1.98 bound... except that
    #    serialized CPC with ML estimation may approach it; nothing beats it
    #    by a wide margin.
    assert all(v > 1.0 for v in serialized_mvp.values())
