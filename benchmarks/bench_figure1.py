"""Figure 1: memory over relative standard error for different MVPs."""

from _common import record_rows, run_once

from repro.experiments import figure1


def test_figure1(benchmark):
    rows = run_once(benchmark, figure1.run)
    record_rows("figure1", "Figure 1: memory (bytes) vs relative standard error", rows)
    # Shape: memory scales with MVP and with error**-2.
    assert rows[0]["MVP=8_bytes"] == 4 * rows[0]["MVP=2_bytes"]
