"""Figure 11: operation timings (insert / estimate / serialize / merge).

Genuine pytest-benchmark microbenchmarks (not pedantic single shots).
Absolute numbers are CPython, not the paper's JVM/C++; the assertions
check the *relative* observations of Sec. 5.3 that survive the language
change: per-element insert cost independent of n for the constant-time
sketches, CPC serialization an order of magnitude slower, martingale
estimation O(1).
"""

import time

import pytest
from _common import record_rows

from repro.experiments.common import env_int
from repro.experiments.figure11 import make_operation
from repro.experiments.suite import figure11_suite

N_LARGE = env_int("REPRO_N_FIGURE11", 50_000)
SUITE = {spec.name: spec for spec in figure11_suite()}

#: A representative cross-section (running all 13 algorithms x 5 ops x 2 n
#: under full pytest-benchmark statistics would take tens of minutes).
TIMED_ALGORITHMS = [
    "ELL (t=2,d=20,p=8)",
    "ELL (t=2,d=20,p=8, martingale)",
    "HLL (6-bit, p=11)",
    "ULL (ML, p=10)",
    "CPC (p=10)",
    "HLLL (p=11)",
    "SpikeSketch (128)",
]


@pytest.mark.parametrize("name", TIMED_ALGORITHMS)
@pytest.mark.parametrize("operation", ["insert", "estimate", "serialize", "merge"])
def test_operation_timing(benchmark, name, operation):
    spec = SUITE[name]
    try:
        func, work = make_operation(spec, operation, n=10_000)
    except NotImplementedError:
        pytest.skip(f"{name} does not support {operation}")
    benchmark.group = operation
    benchmark.extra_info["per_element_work"] = work
    benchmark(func)


def test_insert_constant_time_claim(benchmark):
    """ELL per-element insert cost must not grow with n (Sec. 5.3)."""
    spec = SUITE["ELL (t=2,d=20,p=8)"]

    def measure(n: int) -> float:
        func, work = make_operation(spec, "insert", n)
        best = min(_timed(func) for _ in range(3))
        return best / work

    def run():
        return measure(1_000), measure(N_LARGE)

    small, large = benchmark.pedantic(run, rounds=1, iterations=1)
    record_rows(
        "figure11_constant_insert",
        "ELL per-element insert time vs n",
        [
            {"n": 1_000, "seconds_per_insert": small},
            {"n": N_LARGE, "seconds_per_insert": large},
        ],
    )
    assert large < small * 3.0  # constant within noise (allocation amortises)


def test_cpc_serialization_slow_claim(benchmark):
    """CPC serialize must be >10x slower than ELL serialize (Sec. 5.3)."""
    ell_func, _ = make_operation(SUITE["ELL (t=2,d=20,p=8)"], "serialize", 10_000)
    cpc_func, _ = make_operation(SUITE["CPC (p=10)"], "serialize", 10_000)

    def run():
        return min(_timed(ell_func) for _ in range(5)), min(
            _timed(cpc_func) for _ in range(3)
        )

    ell_time, cpc_time = benchmark.pedantic(run, rounds=1, iterations=1)
    record_rows(
        "figure11_cpc_serialize",
        "Serialize times (s)",
        [{"sketch": "ELL(2,20,p=8)", "seconds": ell_time},
         {"sketch": "CPC(p=10)", "seconds": cpc_time}],
    )
    assert cpc_time > 10.0 * ell_time


def test_martingale_estimate_is_constant_time(benchmark):
    """Martingale-tracking sketches answer estimates in O(1) (Sec. 5.3)."""
    mart_func, _ = make_operation(
        SUITE["ELL (t=2,d=20,p=8, martingale)"], "estimate", 10_000
    )
    ml_func, _ = make_operation(SUITE["ELL (t=2,d=20,p=8)"], "estimate", 10_000)

    def run():
        return min(_timed(mart_func, loops=100) for _ in range(3)), min(
            _timed(ml_func, loops=10) for _ in range(3)
        )

    mart_time, ml_time = benchmark.pedantic(run, rounds=1, iterations=1)
    record_rows(
        "figure11_estimate",
        "Estimate times (s)",
        [{"estimator": "martingale", "seconds": mart_time},
         {"estimator": "ml", "seconds": ml_time}],
    )
    assert mart_time < ml_time


def _timed(func, loops: int = 1) -> float:
    start = time.perf_counter()
    for _ in range(loops):
        func()
    return (time.perf_counter() - start) / loops
