"""Figure 8: bias/RMSE of ML and martingale estimators up to the exa-scale.

16 panels: (t,d) in {(1,9),(2,16),(2,20),(2,24)} x p in {4,6,8,10}. Runs
default to REPRO_RUNS_FIGURE8 (16 here for bench turnaround; the paper uses
100 000 — see EXPERIMENTS.md for the convergence discussion).
"""

import pytest
from _common import record_rows, run_once

from repro.experiments import figure8
from repro.experiments.common import env_int

RUNS = env_int("REPRO_RUNS_FIGURE8", 16)


@pytest.mark.parametrize("t,d", [(1, 9), (2, 16), (2, 20), (2, 24)])
@pytest.mark.parametrize("p", [4, 6, 8, 10])
def test_figure8_panel(benchmark, t, d, p):
    evaluation = run_once(benchmark, lambda: figure8.run_panel(t, d, p, runs=RUNS))
    rows = figure8.panel_rows(evaluation)
    record_rows(
        f"figure8_t{t}_d{d}_p{p}",
        f"Figure 8 panel t={t} d={d} p={p} ({RUNS} runs)",
        rows,
    )
    # Paper claims (loose Monte-Carlo tolerances at small run counts):
    # 1. RMSE ~ theory for intermediate n.
    theory = evaluation.ml.theoretical_rmse
    intermediate = [
        rmse
        for n, rmse in zip(evaluation.ml.checkpoints, evaluation.ml.relative_rmse)
        if 1e4 <= n <= 1e17
    ]
    mean_intermediate = sum(intermediate) / len(intermediate)
    assert mean_intermediate == pytest.approx(theory, rel=0.5)
    # 2. Much smaller error for small n.
    assert evaluation.ml.relative_rmse[0] < theory
    # 3. Martingale theory beats ML theory (Sec. 2.4).
    assert evaluation.martingale.theoretical_rmse < theory
    # 4. Newton never needs more than 10 iterations (Appendix A).
    assert evaluation.newton_iterations_max <= 10
