"""Ablation: the approximated distribution Eq. (8) vs geometric Eq. (2).

Sec. 3.2 argues Eq. (8) keeps the ML equation small: all probabilities are
powers of two, so the likelihood collapses to at most ``64 - p - t``
exponent classes. A geometric base ``b != 2`` would give one term per
distinct update value. This bench counts both and measures the KL
divergence that Figure 2 depicts visually.
"""

from _common import record_rows, run_once

from repro.core.distribution import kl_divergence_to_geometric, phi
from repro.core.params import make_params


def test_ml_term_counts(benchmark):
    def run():
        rows = []
        for t, d, p in ((1, 9, 8), (2, 20, 8), (2, 24, 11), (3, 5, 8)):
            params = make_params(t, d, p)
            k_max = params.max_update_value
            approx_terms = len({phi(k, params) for k in range(1, k_max + 1)})
            geometric_terms = k_max  # one distinct probability per value
            rows.append(
                {
                    "config": f"ELL({t},{d},p={p})",
                    "update_values": k_max,
                    "ml_terms_eq8": approx_terms,
                    "ml_terms_geometric": geometric_terms,
                    "reduction": geometric_terms / approx_terms,
                    "kl_divergence_to_geometric": kl_divergence_to_geometric(t),
                }
            )
        return rows

    rows = run_once(benchmark, run)
    record_rows("ablation_distribution", "Eq. (8) vs Eq. (2): ML equation size", rows)
    for row in rows:
        assert row["ml_terms_eq8"] <= 64
        assert row["reduction"] >= 2.0
        assert row["kl_divergence_to_geometric"] < 0.05  # Figure 2's closeness
