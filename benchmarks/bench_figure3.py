"""Figure 3: the worked two-insertion example (p=2, t=2, d=6)."""

from _common import record_rows, run_once

from repro.experiments import figure3


def test_figure3(benchmark):
    rows = run_once(benchmark, figure3.run)
    record_rows("figure3", "Figure 3 walkthrough (14-bit registers)", rows)
    first, second = rows
    # Both insertions hit the same register; the second has a smaller
    # update value and therefore only sets a window bit.
    assert first["register"] == second["register"]
    assert second["update_value_k"] < first["update_value_k"]
    assert second["max_u"] == first["update_value_k"]
    # The window records the second value at offset u - k.
    offset = first["update_value_k"] - second["update_value_k"]
    assert second["window_bits"][offset - 1] == "1"
