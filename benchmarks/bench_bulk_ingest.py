"""Bulk-ingest throughput: scalar ``add_hash`` loop vs vectorised ``add_hashes``.

Measures items/sec per sketch at ``n in {1e4, 1e6, 1e7}`` (quick mode:
``{1e4, 1e5}``) over precomputed 64-bit hashes, plus the raw-item path
(``add_batch`` over a NumPy integer array, which includes vectorised
Murmur3 hashing), plus the kernel-backend section: the reference NumPy
fold against :class:`repro.backends.FastBulkBackend` (cache-blocked,
workspace-reusing — and the numba JIT where installed), single core,
bit-identity asserted per measurement. Results go to
``BENCH_bulk_ingest.json`` and a text table under ``benchmarks/output/``.

The headline check: ExaLogLog bulk ingestion must be >= 10x the scalar
loop at n = 1e6 (the PR's acceptance criterion). Scalar timing is capped
at ``SCALAR_CAP`` insertions per measurement (the loop rate is flat in n,
so the measured rate is reported alongside the capped count honestly as
``scalar_measured_n``).

Run directly::

    PYTHONPATH=src python benchmarks/bench_bulk_ingest.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.baselines.hyperloglog import HyperLogLog
from repro.baselines.pcsa import PCSA
from repro.baselines.ultraloglog import UltraLogLog
from repro.core.exaloglog import ExaLogLog
from repro.core.sparse import SparseExaLogLog
from repro.experiments.common import format_table

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUTPUT_JSON = REPO_ROOT / "BENCH_bulk_ingest.json"
OUTPUT_TXT = pathlib.Path(__file__).resolve().parent / "output" / "bench_bulk_ingest.txt"

#: Upper bound on sequentially timed insertions (rate is flat in n).
SCALAR_CAP = 1_000_000

SKETCHES = [
    ("ExaLogLog(2,20,8)", lambda: ExaLogLog(2, 20, 8)),
    ("SparseExaLogLog(2,20,8)", lambda: SparseExaLogLog(2, 20, 8)),
    ("HyperLogLog(p=11)", lambda: HyperLogLog(11)),
    ("UltraLogLog(p=10)", lambda: UltraLogLog(10)),
    ("PCSA(p=10)", lambda: PCSA(10)),
]


#: Timed repetitions of the bulk call (best-of); one cold call is dominated
#: by allocator page faults, not by the ingestion path being measured.
BULK_ROUNDS = 3


def _rate(elapsed: float, count: int) -> float:
    return count / elapsed if elapsed > 0 else float("inf")


def bench_sketch(name: str, factory, hashes: np.ndarray) -> dict:
    n = len(hashes)
    scalar_n = min(n, SCALAR_CAP)
    scalar_hashes = hashes[:scalar_n].tolist()

    sketch = factory()
    start = time.perf_counter()
    add_hash = sketch.add_hash
    for hash_value in scalar_hashes:
        add_hash(hash_value)
    scalar_seconds = time.perf_counter() - start

    factory().add_hashes(hashes[: max(1, n // 100)])  # warm ufuncs/allocator
    bulk_seconds = float("inf")
    for _ in range(BULK_ROUNDS):
        bulk_sketch = factory()
        start = time.perf_counter()
        bulk_sketch.add_hashes(hashes)
        bulk_seconds = min(bulk_seconds, time.perf_counter() - start)

    # The contract the speedup rests on: both paths reach the same state.
    if scalar_n == n and sketch.to_bytes() != bulk_sketch.to_bytes():
        raise AssertionError(f"bulk state diverged from scalar state for {name}")

    scalar_rate = _rate(scalar_seconds, scalar_n)
    bulk_rate = _rate(bulk_seconds, n)
    return {
        "sketch": name,
        "n": n,
        "scalar_measured_n": scalar_n,
        "scalar_items_per_s": scalar_rate,
        "bulk_items_per_s": bulk_rate,
        "speedup": bulk_rate / scalar_rate,
    }


def bench_fast_backend(hashes: np.ndarray) -> list[dict]:
    """Reference NumPy kernels vs the blocked/JIT backend, single core."""
    from repro.backends import HAVE_NUMBA, FastBulkBackend
    from repro.backends.bulk import reference_exaloglog_registers

    n = len(hashes)
    params = ExaLogLog(2, 20, 8).params
    reference_exaloglog_registers(hashes[: max(1, n // 100)], params)  # warm

    reference_seconds = float("inf")
    for _ in range(BULK_ROUNDS):
        start = time.perf_counter()
        expected = reference_exaloglog_registers(hashes, params)
        reference_seconds = min(reference_seconds, time.perf_counter() - start)
    reference_rate = _rate(reference_seconds, n)

    backends = [("fast (numpy blocked)", FastBulkBackend(jit=False))]
    if HAVE_NUMBA:
        backends.append(("numba JIT", FastBulkBackend(jit=True, name="numba")))
    rows = [
        {
            "sketch": "backend: reference numpy fold",
            "n": n,
            "scalar_measured_n": n,
            "scalar_items_per_s": reference_rate,
            "bulk_items_per_s": reference_rate,
            "speedup": 1.0,
        }
    ]
    for label, backend in backends:
        backend.fold(hashes[: max(1, n // 100)], params)  # warm (JIT compiles)
        seconds = float("inf")
        for _ in range(BULK_ROUNDS):
            start = time.perf_counter()
            folded = backend.fold(hashes, params)
            seconds = min(seconds, time.perf_counter() - start)
        if not np.array_equal(folded, expected):
            raise AssertionError(f"{label} fold diverged from the reference")
        rate = _rate(seconds, n)
        rows.append(
            {
                "sketch": f"backend: {label}",
                "n": n,
                "scalar_measured_n": n,
                "scalar_items_per_s": reference_rate,
                "bulk_items_per_s": rate,
                "speedup": rate / reference_rate,
            }
        )
    return rows


def bench_raw_items(n: int) -> dict:
    """The raw-item path: vectorised hashing + bulk insert vs add() loop."""
    items = np.arange(n, dtype=np.int64)
    scalar_n = min(n, SCALAR_CAP // 4)  # per-item hashing is slower still

    sketch = ExaLogLog(2, 20, 8)
    start = time.perf_counter()
    for item in items[:scalar_n].tolist():
        sketch.add(item)
    scalar_seconds = time.perf_counter() - start

    ExaLogLog(2, 20, 8).add_batch(items[: max(1, n // 100)])
    bulk_seconds = float("inf")
    for _ in range(BULK_ROUNDS):
        bulk_sketch = ExaLogLog(2, 20, 8)
        start = time.perf_counter()
        bulk_sketch.add_batch(items)
        bulk_seconds = min(bulk_seconds, time.perf_counter() - start)

    scalar_rate = _rate(scalar_seconds, scalar_n)
    bulk_rate = _rate(bulk_seconds, n)
    return {
        "sketch": "ExaLogLog(2,20,8) add_batch(int64 items)",
        "n": n,
        "scalar_measured_n": scalar_n,
        "scalar_items_per_s": scalar_rate,
        "bulk_items_per_s": bulk_rate,
        "speedup": bulk_rate / scalar_rate,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="CI mode: n in {1e4, 1e5}"
    )
    parser.add_argument(
        "--output", type=pathlib.Path, default=OUTPUT_JSON, help="JSON output path"
    )
    args = parser.parse_args(argv)

    sizes = [10_000, 100_000] if args.quick else [10_000, 1_000_000, 10_000_000]
    rng = np.random.Generator(np.random.PCG64(0xB0C4))

    rows = []
    for n in sizes:
        hashes = rng.integers(0, 1 << 64, size=n, dtype=np.uint64)
        for name, factory in SKETCHES:
            row = bench_sketch(name, factory, hashes)
            rows.append(row)
            print(
                f"{name:36s} n={n:>9,d}  scalar {row['scalar_items_per_s']:>12,.0f}/s"
                f"  bulk {row['bulk_items_per_s']:>14,.0f}/s"
                f"  speedup {row['speedup']:>7.1f}x"
            )
        rows.append(bench_raw_items(n))
        print(
            f"{'(raw int64 items via add_batch)':36s} n={n:>9,d}"
            f"  speedup {rows[-1]['speedup']:>7.1f}x"
        )
        for row in bench_fast_backend(hashes):
            rows.append(row)
            print(
                f"{row['sketch']:36s} n={n:>9,d}"
                f"  {row['bulk_items_per_s']:>14,.0f}/s"
                f"  vs reference {row['speedup']:>5.2f}x"
            )

    # The acceptance gate: >= 10x for ExaLogLog at n = 1e6 (full mode).
    # Quick mode guards the same path with a relaxed 3x bar at its largest n.
    gate_n, gate_factor = (max(sizes), 3.0) if args.quick else (1_000_000, 10.0)
    headline = [
        row
        for row in rows
        if row["sketch"].startswith("ExaLogLog") and row["n"] >= gate_n
    ]
    fast_rows = [
        row
        for row in rows
        if row["sketch"] == "backend: fast (numpy blocked)" and row["n"] == max(sizes)
    ]
    payload = {
        "quick": args.quick,
        "sizes": sizes,
        "results": rows,
        "headline_min_exaloglog_speedup": (
            min(row["speedup"] for row in headline) if headline else None
        ),
        "headline_fast_backend_speedup": (
            fast_rows[0]["speedup"] if fast_rows else None
        ),
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    OUTPUT_TXT.parent.mkdir(exist_ok=True)
    OUTPUT_TXT.write_text(
        "== bulk ingest: scalar add_hash loop vs vectorised add_hashes ==\n"
        + format_table(
            rows,
            ["sketch", "n", "scalar_items_per_s", "bulk_items_per_s", "speedup"],
        )
        + "\n"
    )
    print(f"\nwrote {args.output} and {OUTPUT_TXT}")

    if headline:
        worst = min(row["speedup"] for row in headline)
        if worst < gate_factor:
            print(
                f"FAIL: ExaLogLog bulk speedup {worst:.1f}x < {gate_factor:g}x "
                f"at n >= {gate_n:,d}"
            )
            return 1
        print(f"OK: ExaLogLog bulk speedup >= {worst:.1f}x at n >= {gate_n:,d}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
