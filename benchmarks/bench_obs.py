"""Observability overhead: instrumented vs plain ingest, bit-identical.

The obs plane (PR 8) promises near-zero cost when ``REPRO_METRICS`` /
``REPRO_TRACE`` are unset and a small, bounded cost when enabled. This
bench measures both claims on the hot paths:

* **bulk fold** — ``ExaLogLog.add_hashes`` over many pre-hashed batches
  (the tightest ingest loop; one enabled() check + a couple of counter
  increments and a histogram observation per batch when on). This row
  carries the acceptance gate: enabled overhead < 5%.
* **store ingest + query** — ``SketchStore.append`` over grouped batches
  followed by ``execute(Estimate(Scan()))`` (WAL append, fsync account,
  estimation and query-executor instrumentation all live). Context row,
  not gated: wall time is fsync-dominated and noisy on CI.

Every comparison asserts bit-identity first — the instrumented run must
produce byte-identical registers and float-identical estimate rows, or
the bench fails regardless of timing. Results go to ``BENCH_obs.json``
and a text table under ``benchmarks/output/``.

Acceptance gate (full mode): bulk-fold enabled overhead < 5%. Quick
mode (CI, 1-core runners) shrinks the workload and skips the timing
gate, standing on the bit-identity assertions — the same SKIP
convention as the parallel and estimation benches.

Run directly::

    PYTHONPATH=src python benchmarks/bench_obs.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import tempfile
import time

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.core.exaloglog import ExaLogLog
from repro.experiments.common import format_table
from repro.obs import metrics, trace
from repro.query import Estimate, Scan, execute
from repro.store import SketchStore

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUTPUT_JSON = REPO_ROOT / "BENCH_obs.json"
OUTPUT_TXT = pathlib.Path(__file__).resolve().parent / "output" / "bench_obs.txt"

#: Timed repetitions per arm (best-of; absorbs allocator and cache warmup).
ROUNDS = 5


def _instrumentation(enabled: bool):
    """Context enabling (or explicitly disabling) metrics + tracing."""
    import contextlib

    if not enabled:
        return contextlib.nullcontext()

    @contextlib.contextmanager
    def both():
        with metrics.instrumented(), trace.tracing():
            yield

    return both()


def _best_of_interleaved(run, rounds: int):
    """Best-of timing for the off and on arms, rounds interleaved.

    Alternating off/on within each round (instead of all-off then
    all-on) makes the comparison robust to machine-load drift between
    arms. Returns ``{enabled: (best_elapsed_s, last_result)}``.
    """
    best = {False: float("inf"), True: float("inf")}
    results = {}
    for _ in range(rounds):
        for enabled in (False, True):
            with _instrumentation(enabled):
                elapsed, result = run()
            best[enabled] = min(best[enabled], elapsed)
            results[enabled] = result
    return {enabled: (best[enabled], results[enabled]) for enabled in best}


def bench_fold(t: int, d: int, p: int, batches: int, batch: int, rng) -> dict:
    """Bulk ``add_hashes`` fold, instrumentation off vs on. Gated row."""
    payloads = [
        rng.integers(0, 1 << 64, size=batch, dtype=np.uint64) for _ in range(batches)
    ]

    def run():
        sketch = ExaLogLog(t, d, p)
        started = time.perf_counter()
        for hashes in payloads:
            sketch.add_hashes(hashes)
        return time.perf_counter() - started, sketch.to_bytes()

    run()  # warm the backend dispatch and numpy buffers
    results = _best_of_interleaved(run, ROUNDS)
    (off_s, off_bytes), (on_s, on_bytes) = results[False], results[True]
    assert off_bytes == on_bytes, "instrumented fold changed register bytes"
    return {
        "section": "fold",
        "config": f"t={t} d={d} p={p} batch={batch}",
        "batches": batches,
        "off_s": off_s,
        "on_s": on_s,
        "overhead_pct": (on_s / off_s - 1.0) * 100.0,
    }


def bench_store(p: int, groups: int, batches: int, batch: int, rng) -> dict:
    """Store ingest + batched estimate query, off vs on. Context row."""
    keys = [f"group-{index:04d}".encode() for index in range(groups)]
    payloads = [
        [
            rng.integers(0, 1 << 63, size=batch).tolist()
            for _ in range(batches)
        ]
        for _ in keys
    ]

    def run():
        with tempfile.TemporaryDirectory(dir=str(REPO_ROOT)) as scratch:
            started = time.perf_counter()
            with SketchStore.open(pathlib.Path(scratch) / "s", t=2, d=20, p=p) as store:
                for key, group_payloads in zip(keys, payloads):
                    for items in group_payloads:
                        store.append(key, items)
                rows = execute(Estimate(Scan()), store).rows
            return time.perf_counter() - started, rows

    results = _best_of_interleaved(run, max(2, ROUNDS - 3))
    (off_s, off_rows), (on_s, on_rows) = results[False], results[True]
    assert off_rows == on_rows, "instrumented store/query changed estimate rows"
    return {
        "section": "store+query",
        "config": f"p={p} groups={groups} batch={batch}",
        "batches": groups * batches,
        "off_s": off_s,
        "on_s": on_s,
        "overhead_pct": (on_s / off_s - 1.0) * 100.0,
    }


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI mode: small workload, bit-identity only (no overhead gate)",
    )
    parser.add_argument(
        "--output", type=pathlib.Path, default=OUTPUT_JSON, help="JSON output path"
    )
    args = parser.parse_args(argv)
    rng = np.random.Generator(np.random.PCG64(0x0B5))

    rows = []
    if args.quick:
        rows.append(bench_fold(2, 20, 11, batches=40, batch=8192, rng=rng))
        rows.append(bench_store(8, groups=8, batches=4, batch=500, rng=rng))
    else:
        rows.append(bench_fold(2, 20, 11, batches=200, batch=8192, rng=rng))
        rows.append(bench_store(11, groups=32, batches=8, batch=2000, rng=rng))

    for row in rows:
        print(
            f"{row['section']:12s} {row['config']:28s} batches={row['batches']:>5,d}  "
            f"off {row['off_s']:8.4f} s  on {row['on_s']:8.4f} s"
            f"  overhead {row['overhead_pct']:+6.2f}%"
        )

    fold_gate = next(row["overhead_pct"] for row in rows if row["section"] == "fold")
    payload = {
        "quick": args.quick,
        "results": rows,
        "fold_overhead_pct": fold_gate,
        "bit_identical": True,  # asserted above, the run fails otherwise
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    OUTPUT_TXT.parent.mkdir(exist_ok=True)
    OUTPUT_TXT.write_text(
        "== observability: instrumented vs plain ingest (bit-identical) ==\n"
        + format_table(
            rows, ["section", "config", "batches", "off_s", "on_s", "overhead_pct"]
        )
        + "\n"
    )
    print(f"\nwrote {args.output} and {OUTPUT_TXT}")

    if args.quick:
        print(
            "SKIP: overhead gate skipped in quick mode "
            "(bit-identity of instrumented ingest + query asserted)"
        )
        return 0
    if fold_gate >= 5.0:
        print(f"FAIL: bulk-fold enabled overhead {fold_gate:+.2f}% >= 5%")
        return 1
    print(f"OK: bulk-fold enabled overhead {fold_gate:+.2f}% < 5%")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
